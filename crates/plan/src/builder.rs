//! Builds a logical [`Plan`] from a parsed [`Query`].
//!
//! The builder performs name resolution, equi-join extraction and predicate
//! pushdown:
//!
//! * `FROM a, b, c WHERE …` comma-joins are combined left-deep in `FROM`
//!   order; `WHERE` conjuncts of the form `x.col = y.col` across two sides
//!   become equi-join keys, single-relation conjuncts are pushed into the
//!   relation (a [`Operator::Scan`] predicate for base tables, a
//!   [`Operator::Filter`] above subqueries), and remaining multi-relation
//!   conjuncts become join *residual* predicates evaluated inside the join
//!   job itself (§V-A).
//! * `GROUP BY` items may reference select-list aliases (`GROUP BY uid,
//!   ts1` where `ts1` aliases `c1.ts`), as the paper's Q-CSA does.
//! * Aggregation produces an [`Operator::Aggregate`] whose output is group
//!   columns followed by aggregate results; scalar computation over those
//!   (e.g. `0.2 * avg(l_quantity)`, `count(*) - 2`) lands in a
//!   [`Operator::Project`] above, which the translator later folds into the
//!   aggregation's job.

use std::collections::BTreeSet;

use ysmart_rel::{AggFunc, BinOp, DataType, Expr, Field, Schema, SortKey, SortOrder, UnOp, Value};
use ysmart_sql::ast::{AstAggFunc, AstBinOp, AstExpr, Literal, SelectItem, TableSource};
use ysmart_sql::{Query, TableRef};

use crate::catalog::Catalog;
use crate::error::PlanError;
use crate::node::{AggCall, JoinKind, NodeId, Operator, Plan, PlanArena};

/// Builds the logical plan for `query` against `catalog`.
///
/// # Examples
///
/// ```
/// use ysmart_plan::{analyze, build_plan, Catalog};
/// use ysmart_rel::{DataType, Schema};
///
/// let mut catalog = Catalog::new();
/// catalog.add_table("t", Schema::of("t", &[
///     ("k", DataType::Int), ("v", DataType::Int),
/// ]));
/// let query = ysmart_sql::parse("SELECT k, sum(v) FROM t GROUP BY k").unwrap();
/// let plan = build_plan(&catalog, &query).unwrap();
/// let report = analyze(&plan);
/// assert_eq!(report.nodes.len(), 1); // one shuffle node: the aggregation
/// ```
///
/// # Errors
///
/// Any name-resolution failure, unsupported query shape (cross joins
/// without equi predicates, aggregates in `WHERE`, …) or grouping violation.
pub fn build_plan(catalog: &Catalog, query: &Query) -> Result<Plan, PlanError> {
    let mut arena = PlanArena::new();
    let rel = build_query(catalog, &mut arena, query)?;
    Ok(arena.finish(rel.node))
}

/// Builds several independent queries into one plan under a synthetic
/// [`Operator::Batch`] root, enabling *multi-query* correlation analysis:
/// Rule 1 then merges jobs across queries that scan the same tables with
/// the same partition keys. Returns the combined plan and each query's
/// root node.
///
/// # Errors
///
/// Any failure building an individual member query.
pub fn build_batch_plan(
    catalog: &Catalog,
    queries: &[&Query],
) -> Result<(Plan, Vec<NodeId>), PlanError> {
    assert!(!queries.is_empty(), "empty batch");
    let mut arena = PlanArena::new();
    let mut roots = Vec::with_capacity(queries.len());
    for q in queries {
        roots.push(build_query(catalog, &mut arena, q)?.node);
    }
    let batch = arena.add(Operator::Batch, Schema::default(), roots.clone());
    Ok((arena.finish(batch), roots))
}

/// A relation under construction: the arena node plus the schema used for
/// name resolution (requalified by binding aliases; positionally identical
/// to the node's own schema).
#[derive(Debug, Clone)]
struct Rel {
    node: NodeId,
    schema: Schema,
    bindings: BTreeSet<String>,
}

fn build_query(catalog: &Catalog, arena: &mut PlanArena, query: &Query) -> Result<Rel, PlanError> {
    // ---- FROM ----------------------------------------------------------
    let mut items: Vec<Rel> = Vec::new();
    let mut seen_bindings: BTreeSet<String> = BTreeSet::new();
    for item in &query.from {
        let mut rel = build_table_ref(catalog, arena, &item.base)?;
        for join in &item.joins {
            let right = build_table_ref(catalog, arena, &join.table)?;
            let kind = match join.join_type {
                ysmart_sql::JoinType::Inner => JoinKind::Inner,
                ysmart_sql::JoinType::LeftOuter => JoinKind::LeftOuter,
                ysmart_sql::JoinType::RightOuter => JoinKind::RightOuter,
                ysmart_sql::JoinType::FullOuter => JoinKind::FullOuter,
            };
            rel = build_join(arena, rel, right, kind, join.on.conjuncts())?;
        }
        for b in &rel.bindings {
            if !seen_bindings.insert(b.clone()) {
                return Err(PlanError::DuplicateBinding(b.clone()));
            }
        }
        items.push(rel);
    }

    // ---- WHERE: split conjuncts, push down, extract join keys -----------
    let where_conjuncts: Vec<AstExpr> = query
        .where_clause
        .as_ref()
        .map(|w| w.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();
    for c in &where_conjuncts {
        if c.contains_aggregate() {
            return Err(PlanError::Unsupported(
                "aggregate function in WHERE clause".into(),
            ));
        }
    }

    // Push single-relation conjuncts into their relation.
    let mut pending: Vec<AstExpr> = Vec::new();
    for conj in where_conjuncts {
        let refs = binding_refs(&conj, &items)?;
        match items
            .iter()
            .position(|r| !refs.is_empty() && refs.iter().all(|b| r.bindings.contains(b)))
        {
            Some(i) => push_filter(arena, &mut items[i], &conj)?,
            None => pending.push(conj),
        }
    }

    // Combine comma items left-deep, pulling join keys from `pending`.
    let mut current = items.remove(0);
    while !items.is_empty() {
        // Prefer the next item (FROM order) that has an equi conjunct with
        // the current tree; fall back to FROM order.
        let pick = items
            .iter()
            .position(|cand| {
                pending
                    .iter()
                    .any(|c| equi_between(c, &current, cand).is_some())
            })
            .unwrap_or(0);
        let right = items.remove(pick);
        let (on, rest): (Vec<AstExpr>, Vec<AstExpr>) = pending.into_iter().partition(|c| {
            let refs = binding_refs_ok(c, &current, &right);
            refs.is_some()
        });
        pending = rest;
        if on
            .iter()
            .all(|c| equi_between(c, &current, &right).is_none())
        {
            return Err(PlanError::Unsupported(format!(
                "no equi-join predicate between {{{}}} and {{{}}}",
                join_names(&current),
                join_names(&right)
            )));
        }
        current = build_join(arena, current, right, JoinKind::Inner, on.iter().collect())?;
    }
    if let Some(c) = pending.first() {
        return Err(PlanError::UnknownColumn(format!(
            "predicate `{c}` references no known relation"
        )));
    }

    // ---- SELECT / GROUP BY / HAVING -------------------------------------
    let select_items = expand_wildcards(&query.select, &current.schema);
    let has_aggs = select_items.iter().any(|(e, _)| e.contains_aggregate())
        || !query.group_by.is_empty()
        || query
            .having
            .as_ref()
            .is_some_and(AstExpr::contains_aggregate);

    let mut rel = if has_aggs {
        build_aggregate(arena, current, &select_items, query)?
    } else {
        if query.having.is_some() {
            return Err(PlanError::Unsupported("HAVING without aggregation".into()));
        }
        build_projection(arena, current, &select_items)?
    };

    // ---- DISTINCT --------------------------------------------------------
    if query.distinct {
        let schema = rel.schema.clone();
        let node = arena.add(Operator::Distinct, schema.clone(), vec![rel.node]);
        rel = Rel {
            node,
            schema,
            bindings: rel.bindings,
        };
    }

    // ---- ORDER BY / LIMIT -------------------------------------------------
    if !query.order_by.is_empty() {
        let mut keys = Vec::new();
        for (ast, asc) in &query.order_by {
            let expr = resolve_scalar(ast, &rel.schema)?;
            keys.push(SortKey {
                expr,
                order: if *asc {
                    SortOrder::Asc
                } else {
                    SortOrder::Desc
                },
            });
        }
        let schema = rel.schema.clone();
        let node = arena.add(Operator::Sort { keys }, schema.clone(), vec![rel.node]);
        rel = Rel {
            node,
            schema,
            bindings: rel.bindings,
        };
    }
    if let Some(n) = query.limit {
        let schema = rel.schema.clone();
        let node = arena.add(Operator::Limit { n }, schema.clone(), vec![rel.node]);
        rel = Rel {
            node,
            schema,
            bindings: rel.bindings,
        };
    }
    Ok(rel)
}

fn join_names(rel: &Rel) -> String {
    rel.bindings.iter().cloned().collect::<Vec<_>>().join(",")
}

fn build_table_ref(
    catalog: &Catalog,
    arena: &mut PlanArena,
    tref: &TableRef,
) -> Result<Rel, PlanError> {
    match &tref.source {
        TableSource::Table(name) => {
            let base = catalog.table(name)?.clone();
            let binding = tref.alias.clone().unwrap_or_else(|| name.clone());
            let schema = base.requalified(&binding);
            let node = arena.add(
                Operator::Scan {
                    table: name.clone(),
                    binding: binding.clone(),
                    predicate: None,
                },
                schema.clone(),
                vec![],
            );
            Ok(Rel {
                node,
                schema,
                bindings: BTreeSet::from([binding]),
            })
        }
        TableSource::Subquery(q) => {
            let inner = build_query(catalog, arena, q)?;
            let alias = tref
                .alias
                .clone()
                .expect("parser enforces subquery aliases");
            let schema = inner.schema.requalified(&alias);
            Ok(Rel {
                node: inner.node,
                schema,
                bindings: BTreeSet::from([alias]),
            })
        }
    }
}

/// Returns the set of bindings referenced by a predicate. Unqualified
/// columns are attributed to the unique relation that has the column.
fn binding_refs(expr: &AstExpr, items: &[Rel]) -> Result<BTreeSet<String>, PlanError> {
    let mut out = BTreeSet::new();
    let mut err = None;
    walk_columns(expr, &mut |qualifier, name| {
        match qualifier {
            Some(q) => {
                if items
                    .iter()
                    .any(|r| r.schema.resolve(Some(q), name).is_ok())
                {
                    out.insert(q.to_string());
                } else if err.is_none() {
                    err = Some(PlanError::UnknownColumn(format!("{q}.{name}")));
                }
            }
            None => {
                let owners: Vec<&Rel> = items
                    .iter()
                    .filter(|r| r.schema.resolve(None, name).is_ok())
                    .collect();
                match owners.len() {
                    1 => {
                        // attribute to the single binding of that relation if
                        // unique, else to all its bindings (conservative).
                        out.extend(owners[0].bindings.iter().cloned());
                    }
                    0 => err = Some(PlanError::UnknownColumn(name.to_string())),
                    _ => err = Some(PlanError::AmbiguousColumn(name.to_string())),
                }
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// If every column of `expr` resolves within `left` ∪ `right` (and at least
/// one side is touched), returns the reference set.
fn binding_refs_ok(expr: &AstExpr, left: &Rel, right: &Rel) -> Option<BTreeSet<String>> {
    let both = [left.clone(), right.clone()];
    binding_refs(expr, &both).ok()
}

fn walk_columns(expr: &AstExpr, f: &mut impl FnMut(Option<&str>, &str)) {
    match expr {
        AstExpr::Column { qualifier, name } => f(qualifier.as_deref(), name),
        AstExpr::Literal(_) => {}
        AstExpr::Binary { lhs, rhs, .. } => {
            walk_columns(lhs, f);
            walk_columns(rhs, f);
        }
        AstExpr::Not(e) | AstExpr::Neg(e) | AstExpr::IsNull(e) | AstExpr::IsNotNull(e) => {
            walk_columns(e, f)
        }
        AstExpr::Agg { arg, .. } => {
            if let Some(a) = arg {
                walk_columns(a, f);
            }
        }
    }
}

/// Checks whether `conj` is `l.col = r.col` across the two relations;
/// returns the (left index, right index) pair when it is.
fn equi_between(conj: &AstExpr, left: &Rel, right: &Rel) -> Option<(usize, usize)> {
    let AstExpr::Binary {
        op: AstBinOp::Eq,
        lhs,
        rhs,
    } = conj
    else {
        return None;
    };
    let col = |e: &AstExpr, rel: &Rel| -> Option<usize> {
        let AstExpr::Column { qualifier, name } = e else {
            return None;
        };
        rel.schema.resolve(qualifier.as_deref(), name).ok()
    };
    if let (Some(l), Some(r)) = (col(lhs, left), col(rhs, right)) {
        return Some((l, r));
    }
    if let (Some(l), Some(r)) = (col(rhs, left), col(lhs, right)) {
        return Some((l, r));
    }
    None
}

/// Pushes a single-relation predicate into the relation: merged into the
/// scan predicate for base tables, a `Filter` node otherwise.
fn push_filter(arena: &mut PlanArena, rel: &mut Rel, conj: &AstExpr) -> Result<(), PlanError> {
    let resolved = resolve_scalar(conj, &rel.schema)?;
    let is_scan = matches!(arena.node(rel.node).op, Operator::Scan { .. });
    if is_scan {
        // Rebuild the scan node in place is not possible in the arena; add a
        // filter-free idiom instead: mutate via a fresh node would orphan the
        // old one, so scans expose predicate merging through `PlanArena`.
        arena.merge_scan_predicate(rel.node, resolved);
    } else {
        let schema = rel.schema.clone();
        let node = arena.add(
            Operator::Filter {
                predicate: resolved,
            },
            arena.node(rel.node).schema.clone(),
            vec![rel.node],
        );
        rel.node = node;
        rel.schema = schema;
    }
    Ok(())
}

fn build_join(
    arena: &mut PlanArena,
    left: Rel,
    right: Rel,
    kind: JoinKind,
    conjuncts: Vec<&AstExpr>,
) -> Result<Rel, PlanError> {
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    let combined = left.schema.concat(&right.schema);
    for conj in conjuncts {
        if conj.contains_aggregate() {
            return Err(PlanError::Unsupported("aggregate in join condition".into()));
        }
        if let Some((l, r)) = equi_between(conj, &left, &right) {
            left_keys.push(l);
            right_keys.push(r);
        } else {
            residual.push(resolve_scalar(conj, &combined)?);
        }
    }
    if left_keys.is_empty() {
        return Err(PlanError::Unsupported(format!(
            "join between {{{}}} and {{{}}} has no equi predicate",
            join_names(&left),
            join_names(&right)
        )));
    }
    let node = arena.add(
        Operator::Join {
            kind,
            left_keys,
            right_keys,
            residual: Expr::conjunction(residual),
        },
        combined.clone(),
        vec![left.node, right.node],
    );
    let mut bindings = left.bindings;
    bindings.extend(right.bindings);
    Ok(Rel {
        node,
        schema: combined,
        bindings,
    })
}

/// Expands `*` into one `(expr, alias)` per scope column.
fn expand_wildcards(items: &[SelectItem], schema: &Schema) -> Vec<(AstExpr, Option<String>)> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for f in schema.fields() {
                    out.push((
                        AstExpr::Column {
                            qualifier: if f.qualifier.is_empty() {
                                None
                            } else {
                                Some(f.qualifier.clone())
                            },
                            name: f.name.clone(),
                        },
                        None,
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => out.push((expr.clone(), alias.clone())),
        }
    }
    out
}

/// Resolves a scalar (non-aggregate) AST expression against a schema.
fn resolve_scalar(ast: &AstExpr, schema: &Schema) -> Result<Expr, PlanError> {
    match ast {
        AstExpr::Column { qualifier, name } => {
            let i = schema.resolve(qualifier.as_deref(), name)?;
            Ok(Expr::Column(i))
        }
        AstExpr::Literal(l) => Ok(Expr::Literal(literal_value(l))),
        AstExpr::Binary { op, lhs, rhs } => Ok(Expr::binary(
            binop(*op),
            resolve_scalar(lhs, schema)?,
            resolve_scalar(rhs, schema)?,
        )),
        AstExpr::Not(e) => Ok(unary(UnOp::Not, resolve_scalar(e, schema)?)),
        AstExpr::Neg(e) => Ok(unary(UnOp::Neg, resolve_scalar(e, schema)?)),
        AstExpr::IsNull(e) => Ok(unary(UnOp::IsNull, resolve_scalar(e, schema)?)),
        AstExpr::IsNotNull(e) => Ok(unary(UnOp::IsNotNull, resolve_scalar(e, schema)?)),
        AstExpr::Agg { .. } => Err(PlanError::Unsupported(
            "aggregate function in scalar context".into(),
        )),
    }
}

fn unary(op: UnOp, operand: Expr) -> Expr {
    Expr::Unary {
        op,
        operand: Box::new(operand),
    }
}

fn binop(op: AstBinOp) -> BinOp {
    match op {
        AstBinOp::Eq => BinOp::Eq,
        AstBinOp::NotEq => BinOp::NotEq,
        AstBinOp::Lt => BinOp::Lt,
        AstBinOp::LtEq => BinOp::LtEq,
        AstBinOp::Gt => BinOp::Gt,
        AstBinOp::GtEq => BinOp::GtEq,
        AstBinOp::And => BinOp::And,
        AstBinOp::Or => BinOp::Or,
        AstBinOp::Add => BinOp::Add,
        AstBinOp::Sub => BinOp::Sub,
        AstBinOp::Mul => BinOp::Mul,
        AstBinOp::Div => BinOp::Div,
    }
}

fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(x) => Value::Float(*x),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Null => Value::Null,
    }
}

/// Infers a (loose) output type for a resolved expression.
fn infer_type(expr: &Expr, schema: &Schema) -> DataType {
    match expr {
        Expr::Column(i) => schema.field(*i).data_type,
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Str),
        Expr::Binary { op, lhs, rhs } => {
            if op.is_predicate() {
                DataType::Bool
            } else {
                let lt = infer_type(lhs, schema);
                let rt = infer_type(rhs, schema);
                if lt == DataType::Float || rt == DataType::Float || *op == BinOp::Div {
                    DataType::Float
                } else {
                    lt
                }
            }
        }
        Expr::Unary { op, operand } => match op {
            UnOp::Neg => infer_type(operand, schema),
            _ => DataType::Bool,
        },
    }
}

/// A name for a projected expression: its alias, the column's own name for
/// bare columns, or a synthesised `colN`.
fn output_field(
    ast: &AstExpr,
    alias: &Option<String>,
    schema: &Schema,
    idx: usize,
    expr: &Expr,
) -> Field {
    if let Some(a) = alias {
        return Field::unqualified(a, infer_type(expr, schema));
    }
    if let AstExpr::Column { name, .. } = ast {
        if let Expr::Column(i) = expr {
            let f = schema.field(*i);
            return Field::new(&f.qualifier, name, f.data_type);
        }
    }
    Field::unqualified(&format!("col{idx}"), infer_type(expr, schema))
}

fn build_projection(
    arena: &mut PlanArena,
    input: Rel,
    select: &[(AstExpr, Option<String>)],
) -> Result<Rel, PlanError> {
    let mut exprs = Vec::new();
    let mut fields = Vec::new();
    for (idx, (ast, alias)) in select.iter().enumerate() {
        let e = resolve_scalar(ast, &input.schema)?;
        fields.push(output_field(ast, alias, &input.schema, idx, &e));
        exprs.push(e);
    }
    // Identity projection (same columns in order, no renames) is a no-op.
    let identity = exprs.len() == input.schema.len()
        && exprs
            .iter()
            .enumerate()
            .all(|(i, e)| matches!(e, Expr::Column(c) if *c == i))
        && fields
            .iter()
            .zip(input.schema.fields())
            .all(|(a, b)| a.name == b.name);
    if identity {
        return Ok(input);
    }
    let schema = Schema::new(fields);
    let node = arena.add(
        Operator::Project { exprs },
        schema.clone(),
        vec![input.node],
    );
    Ok(Rel {
        node,
        schema,
        bindings: input.bindings,
    })
}

/// Builds `Aggregate` (+ `Project`) for a grouped or global aggregation.
fn build_aggregate(
    arena: &mut PlanArena,
    input: Rel,
    select: &[(AstExpr, Option<String>)],
    query: &Query,
) -> Result<Rel, PlanError> {
    // Resolve GROUP BY items: select aliases first, then scope columns.
    let mut group_exprs: Vec<Expr> = Vec::new();
    let mut group_asts: Vec<AstExpr> = Vec::new();
    for g in &query.group_by {
        let ast = dealias(g, select);
        if ast.contains_aggregate() {
            return Err(PlanError::Unsupported("aggregate in GROUP BY".into()));
        }
        group_exprs.push(resolve_scalar(&ast, &input.schema)?);
        group_asts.push(ast);
    }

    // Computed group expressions need a Project below the aggregate that
    // appends them as real columns.
    let needs_pre = group_exprs.iter().any(|e| !matches!(e, Expr::Column(_)));
    let (child, group_cols) = if needs_pre {
        let mut exprs: Vec<Expr> = (0..input.schema.len()).map(Expr::Column).collect();
        let mut fields: Vec<Field> = input.schema.fields().to_vec();
        let mut cols = Vec::new();
        for (i, e) in group_exprs.iter().enumerate() {
            match e {
                Expr::Column(c) => cols.push(*c),
                other => {
                    cols.push(exprs.len());
                    fields.push(Field::unqualified(
                        &format!("group{i}"),
                        infer_type(other, &input.schema),
                    ));
                    exprs.push(other.clone());
                }
            }
        }
        let schema = Schema::new(fields);
        let node = arena.add(
            Operator::Project { exprs },
            schema.clone(),
            vec![input.node],
        );
        (
            Rel {
                node,
                schema,
                bindings: input.bindings.clone(),
            },
            cols,
        )
    } else {
        let cols = group_exprs
            .iter()
            .map(|e| match e {
                Expr::Column(c) => *c,
                _ => unreachable!("checked above"),
            })
            .collect();
        (input, cols)
    };

    // Collect aggregate calls from SELECT and HAVING, deduplicated.
    let mut aggs: Vec<(AggFunc, Option<Expr>)> = Vec::new();
    let mut collect =
        |ast: &AstExpr| -> Result<(), PlanError> { collect_aggs(ast, &child.schema, &mut aggs) };
    for (ast, _) in select {
        collect(ast)?;
    }
    if let Some(h) = &query.having {
        collect(h)?;
    }

    // Aggregate output schema: group columns, then aggregate results.
    let mut fields: Vec<Field> = group_cols
        .iter()
        .map(|&c| child.schema.field(c).clone())
        .collect();
    for (i, (func, arg)) in aggs.iter().enumerate() {
        let ty = match func {
            AggFunc::Count | AggFunc::CountDistinct => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => arg
                .as_ref()
                .map_or(DataType::Int, |a| infer_type(a, &child.schema)),
        };
        // Name the aggregate output after the select item that is exactly
        // this call, so an aggregate-only projection is an identity and no
        // extra Project node is needed.
        let name = select
            .iter()
            .enumerate()
            .find_map(|(k, (ast, alias))| {
                let AstExpr::Agg {
                    func: f,
                    distinct,
                    arg: a,
                } = ast
                else {
                    return None;
                };
                let same = agg_func(*f, *distinct) == *func
                    && a.as_ref()
                        .map(|x| resolve_scalar(x, &child.schema))
                        .transpose()
                        .ok()?
                        == *arg;
                if !same {
                    return None;
                }
                Some(alias.clone().unwrap_or_else(|| format!("col{k}")))
            })
            .unwrap_or_else(|| format!("agg{i}"));
        fields.push(Field::unqualified(&name, ty));
    }
    let agg_schema = Schema::new(fields);

    // HAVING over the aggregate output.
    let having = query
        .having
        .as_ref()
        .map(|h| rewrite_post_agg(h, &child.schema, &group_asts, &group_cols, &aggs, select))
        .transpose()?;

    let agg_node = arena.add(
        Operator::Aggregate {
            group_by: group_cols.clone(),
            aggs: aggs
                .iter()
                .map(|(func, arg)| AggCall {
                    func: *func,
                    arg: arg.clone(),
                })
                .collect(),
            having,
        },
        agg_schema.clone(),
        vec![child.node],
    );
    let agg_rel = Rel {
        node: agg_node,
        schema: agg_schema.clone(),
        bindings: child.bindings.clone(),
    };

    // Final projection: select expressions over the aggregate output.
    let mut exprs = Vec::new();
    let mut out_fields = Vec::new();
    for (idx, (ast, alias)) in select.iter().enumerate() {
        let e = rewrite_post_agg(ast, &child.schema, &group_asts, &group_cols, &aggs, select)?;
        out_fields.push(output_field(ast, alias, &agg_schema, idx, &e));
        exprs.push(e);
    }
    let identity = exprs.len() == agg_schema.len()
        && exprs
            .iter()
            .enumerate()
            .all(|(i, e)| matches!(e, Expr::Column(c) if *c == i));
    if identity {
        // Keep aliases: rename aggregate-output fields in place by wrapping
        // in a Project only when names differ.
        let renames_needed = out_fields
            .iter()
            .zip(agg_schema.fields())
            .any(|(a, b)| a.name != b.name);
        if !renames_needed {
            return Ok(agg_rel);
        }
    }
    let schema = Schema::new(out_fields);
    let node = arena.add(Operator::Project { exprs }, schema.clone(), vec![agg_node]);
    Ok(Rel {
        node,
        schema,
        bindings: agg_rel.bindings,
    })
}

/// Substitutes a bare identifier that names a select alias with the aliased
/// expression (`GROUP BY ts1` → `GROUP BY c1.ts`).
fn dealias(g: &AstExpr, select: &[(AstExpr, Option<String>)]) -> AstExpr {
    if let AstExpr::Column {
        qualifier: None,
        name,
    } = g
    {
        for (expr, alias) in select {
            if alias.as_deref() == Some(name.as_str()) && !expr.contains_aggregate() {
                return expr.clone();
            }
        }
    }
    g.clone()
}

/// Collects aggregate calls (deduplicated by resolved argument).
fn collect_aggs(
    ast: &AstExpr,
    child: &Schema,
    out: &mut Vec<(AggFunc, Option<Expr>)>,
) -> Result<(), PlanError> {
    match ast {
        AstExpr::Agg {
            func,
            distinct,
            arg,
        } => {
            let rf = agg_func(*func, *distinct);
            let ra = arg.as_ref().map(|a| resolve_scalar(a, child)).transpose()?;
            if !out.iter().any(|(f, a)| *f == rf && *a == ra) {
                out.push((rf, ra));
            }
            Ok(())
        }
        AstExpr::Binary { lhs, rhs, .. } => {
            collect_aggs(lhs, child, out)?;
            collect_aggs(rhs, child, out)
        }
        AstExpr::Not(e) | AstExpr::Neg(e) | AstExpr::IsNull(e) | AstExpr::IsNotNull(e) => {
            collect_aggs(e, child, out)
        }
        AstExpr::Column { .. } | AstExpr::Literal(_) => Ok(()),
    }
}

fn agg_func(f: AstAggFunc, distinct: bool) -> AggFunc {
    match (f, distinct) {
        (AstAggFunc::Count, true) => AggFunc::CountDistinct,
        (AstAggFunc::Count, false) => AggFunc::Count,
        (AstAggFunc::Sum, _) => AggFunc::Sum,
        (AstAggFunc::Avg, _) => AggFunc::Avg,
        (AstAggFunc::Min, _) => AggFunc::Min,
        (AstAggFunc::Max, _) => AggFunc::Max,
    }
}

/// Rewrites a post-aggregation expression (select item or HAVING) onto the
/// aggregate output schema: group items map to their output position,
/// aggregate calls map to theirs, anything else must be built from those.
fn rewrite_post_agg(
    ast: &AstExpr,
    child: &Schema,
    group_asts: &[AstExpr],
    group_cols: &[usize],
    aggs: &[(AggFunc, Option<Expr>)],
    select: &[(AstExpr, Option<String>)],
) -> Result<Expr, PlanError> {
    // A whole-expression match against a GROUP BY item?
    if let Ok(resolved) = resolve_scalar(ast, child) {
        for (pos, g) in group_asts.iter().enumerate() {
            if resolve_scalar(g, child).as_ref() == Ok(&resolved) {
                return Ok(Expr::Column(pos));
            }
        }
        // A bare column that happens to be one of the group columns by index.
        if let Expr::Column(c) = resolved {
            if let Some(pos) = group_cols.iter().position(|&gc| gc == c) {
                return Ok(Expr::Column(pos));
            }
        }
    }
    match ast {
        AstExpr::Agg {
            func,
            distinct,
            arg,
        } => {
            let rf = agg_func(*func, *distinct);
            let ra = arg.as_ref().map(|a| resolve_scalar(a, child)).transpose()?;
            let pos = aggs
                .iter()
                .position(|(f, a)| *f == rf && *a == ra)
                .expect("aggregate was collected");
            Ok(Expr::Column(group_cols.len() + pos))
        }
        AstExpr::Binary { op, lhs, rhs } => Ok(Expr::binary(
            binop(*op),
            rewrite_post_agg(lhs, child, group_asts, group_cols, aggs, select)?,
            rewrite_post_agg(rhs, child, group_asts, group_cols, aggs, select)?,
        )),
        AstExpr::Not(e) => Ok(unary(
            UnOp::Not,
            rewrite_post_agg(e, child, group_asts, group_cols, aggs, select)?,
        )),
        AstExpr::Neg(e) => Ok(unary(
            UnOp::Neg,
            rewrite_post_agg(e, child, group_asts, group_cols, aggs, select)?,
        )),
        AstExpr::IsNull(e) => Ok(unary(
            UnOp::IsNull,
            rewrite_post_agg(e, child, group_asts, group_cols, aggs, select)?,
        )),
        AstExpr::IsNotNull(e) => Ok(unary(
            UnOp::IsNotNull,
            rewrite_post_agg(e, child, group_asts, group_cols, aggs, select)?,
        )),
        AstExpr::Literal(l) => Ok(Expr::Literal(literal_value(l))),
        AstExpr::Column { qualifier, name } => {
            // Select-alias reference (HAVING n > 1 with `count(*) AS n`).
            // Self-referential aliases (`a AS a`) must not recurse.
            if qualifier.is_none() {
                for (expr, alias) in select {
                    if alias.as_deref() == Some(name.as_str()) && expr != ast {
                        return rewrite_post_agg(expr, child, group_asts, group_cols, aggs, select);
                    }
                }
            }
            Err(PlanError::NotGrouped(name.clone()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Operator;
    use ysmart_sql::parse;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "clicks",
            Schema::of(
                "clicks",
                &[
                    ("uid", DataType::Int),
                    ("page_id", DataType::Int),
                    ("cid", DataType::Int),
                    ("ts", DataType::Int),
                ],
            ),
        );
        c.add_table(
            "lineitem",
            Schema::of(
                "lineitem",
                &[
                    ("l_orderkey", DataType::Int),
                    ("l_partkey", DataType::Int),
                    ("l_suppkey", DataType::Int),
                    ("l_quantity", DataType::Float),
                    ("l_extendedprice", DataType::Float),
                    ("l_receiptdate", DataType::Int),
                    ("l_commitdate", DataType::Int),
                ],
            ),
        );
        c.add_table(
            "part",
            Schema::of(
                "part",
                &[("p_partkey", DataType::Int), ("p_name", DataType::Str)],
            ),
        );
        c.add_table(
            "orders",
            Schema::of(
                "orders",
                &[
                    ("o_orderkey", DataType::Int),
                    ("o_orderstatus", DataType::Str),
                    ("o_totalprice", DataType::Float),
                ],
            ),
        );
        c
    }

    fn plan_of(sql: &str) -> Plan {
        build_plan(&catalog(), &parse(sql).unwrap()).unwrap()
    }

    fn count_ops(plan: &Plan, name: &str) -> usize {
        plan.ids()
            .filter(|&id| plan.node(id).op.name() == name)
            .count()
    }

    #[test]
    fn simple_agg_plan() {
        let p = plan_of("SELECT cid, count(*) FROM clicks GROUP BY cid");
        assert_eq!(count_ops(&p, "Scan"), 1);
        assert_eq!(count_ops(&p, "Aggregate"), 1);
        // identity projection elided
        assert_eq!(count_ops(&p, "Project"), 0);
    }

    #[test]
    fn where_pushed_into_scan() {
        let p = plan_of("SELECT uid FROM clicks WHERE cid = 5 AND ts > 100");
        let scan = p
            .ids()
            .find(|&id| matches!(p.node(id).op, Operator::Scan { .. }))
            .unwrap();
        match &p.node(scan).op {
            Operator::Scan { predicate, .. } => {
                let pred = predicate.as_ref().expect("predicate pushed down");
                assert!(pred.to_string().contains("AND"));
            }
            _ => unreachable!(),
        }
        assert_eq!(count_ops(&p, "Filter"), 0);
    }

    #[test]
    fn comma_join_extracts_equi_keys() {
        let p = plan_of("SELECT l_extendedprice FROM lineitem, part WHERE p_partkey = l_partkey");
        assert_eq!(count_ops(&p, "Join"), 1);
        let join = p
            .ids()
            .find(|&id| matches!(p.node(id).op, Operator::Join { .. }))
            .unwrap();
        match &p.node(join).op {
            Operator::Join {
                left_keys,
                right_keys,
                residual,
                ..
            } => {
                assert_eq!(left_keys, &vec![1]); // lineitem.l_partkey
                assert_eq!(right_keys, &vec![0]); // part.p_partkey
                assert!(residual.is_none());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn non_equi_becomes_residual() {
        let p = plan_of(
            "SELECT c1.uid FROM clicks AS c1, clicks AS c2 \
             WHERE c1.uid = c2.uid AND c1.ts < c2.ts",
        );
        let join = p
            .ids()
            .find(|&id| matches!(p.node(id).op, Operator::Join { .. }))
            .unwrap();
        match &p.node(join).op {
            Operator::Join { residual, .. } => assert!(residual.is_some()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn cross_join_rejected() {
        let e =
            build_plan(&catalog(), &parse("SELECT uid FROM clicks, part").unwrap()).unwrap_err();
        assert!(matches!(e, PlanError::Unsupported(_)));
    }

    #[test]
    fn duplicate_binding_rejected() {
        let e = build_plan(
            &catalog(),
            &parse("SELECT 1 FROM clicks AS a, part AS a WHERE a.uid = a.p_partkey").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(e, PlanError::DuplicateBinding(_)));
    }

    #[test]
    fn group_by_select_alias() {
        // Q-CSA inner shape: GROUP BY c1.uid, ts1 where ts1 aliases c1.ts.
        let p = plan_of(
            "SELECT c1.uid, c1.ts AS ts1, min(c2.ts) AS ts2 \
             FROM clicks AS c1, clicks AS c2 \
             WHERE c1.uid = c2.uid AND c1.ts < c2.ts \
             GROUP BY c1.uid, ts1",
        );
        let agg = p
            .ids()
            .find(|&id| matches!(p.node(id).op, Operator::Aggregate { .. }))
            .unwrap();
        match &p.node(agg).op {
            Operator::Aggregate { group_by, aggs, .. } => {
                assert_eq!(group_by.len(), 2);
                assert_eq!(aggs.len(), 1);
            }
            _ => unreachable!(),
        }
        // Output field names: uid, ts1, ts2.
        let root = p.node(p.root());
        let names: Vec<&str> = root
            .schema
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["uid", "ts1", "ts2"]);
    }

    #[test]
    fn global_aggregation_without_group() {
        let p = plan_of("SELECT avg(ts) FROM clicks");
        let agg = p
            .ids()
            .find(|&id| matches!(p.node(id).op, Operator::Aggregate { .. }))
            .unwrap();
        match &p.node(agg).op {
            Operator::Aggregate { group_by, .. } => assert!(group_by.is_empty()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn scalar_over_aggregate_lands_in_project() {
        let p = plan_of("SELECT sum(l_extendedprice) / 7.0 AS avg_yearly FROM lineitem");
        assert_eq!(count_ops(&p, "Project"), 1);
        let root = p.node(p.root());
        assert_eq!(root.schema.field(0).name, "avg_yearly");
        assert_eq!(root.schema.field(0).data_type, DataType::Float);
    }

    #[test]
    fn having_resolves_aggregates_and_aliases() {
        let p = plan_of("SELECT cid, count(*) AS n FROM clicks GROUP BY cid HAVING count(*) > 10");
        let agg = p
            .ids()
            .find(|&id| matches!(p.node(id).op, Operator::Aggregate { .. }))
            .unwrap();
        match &p.node(agg).op {
            Operator::Aggregate { having, .. } => assert!(having.is_some()),
            _ => unreachable!(),
        }
        // alias form
        let p2 = plan_of("SELECT cid, count(*) AS n FROM clicks GROUP BY cid HAVING n > 10");
        assert_eq!(count_ops(&p2, "Aggregate"), 1);
    }

    #[test]
    fn not_grouped_error() {
        let e = build_plan(
            &catalog(),
            &parse("SELECT uid, count(*) FROM clicks GROUP BY cid").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(e, PlanError::NotGrouped(_)));
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let e = build_plan(
            &catalog(),
            &parse("SELECT uid FROM clicks WHERE count(*) > 1").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(e, PlanError::Unsupported(_)));
    }

    #[test]
    fn explicit_left_outer_join() {
        let p = plan_of(
            "SELECT l_orderkey FROM lineitem LEFT OUTER JOIN orders \
             ON o_orderkey = l_orderkey WHERE o_orderstatus IS NULL",
        );
        let join = p
            .ids()
            .find(|&id| matches!(p.node(id).op, Operator::Join { .. }))
            .unwrap();
        match &p.node(join).op {
            Operator::Join { kind, .. } => assert_eq!(*kind, JoinKind::LeftOuter),
            _ => unreachable!(),
        }
        // IS NULL over the join output cannot be pushed into a scan: it
        // lands in a Filter above the join.
        assert_eq!(count_ops(&p, "Filter"), 1);
    }

    #[test]
    fn subquery_alias_scopes() {
        let p = plan_of(
            "SELECT i.l_partkey FROM \
             (SELECT l_partkey, avg(l_quantity) AS aq FROM lineitem GROUP BY l_partkey) AS i \
             WHERE i.aq > 10",
        );
        assert_eq!(count_ops(&p, "Aggregate"), 1);
        assert!(count_ops(&p, "Filter") >= 1);
    }

    #[test]
    fn order_by_and_limit() {
        let p = plan_of("SELECT uid, ts FROM clicks ORDER BY ts DESC LIMIT 10");
        assert_eq!(count_ops(&p, "Sort"), 1);
        assert_eq!(count_ops(&p, "Limit"), 1);
        // Limit sits above Sort.
        assert!(matches!(p.node(p.root()).op, Operator::Limit { .. }));
    }

    #[test]
    fn distinct_node() {
        let p = plan_of("SELECT DISTINCT cid FROM clicks");
        assert_eq!(count_ops(&p, "Distinct"), 1);
    }

    #[test]
    fn q17_builds() {
        let p = plan_of(
            "SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
             FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1
                   FROM lineitem GROUP BY l_partkey) AS inner_t,
                  (SELECT l_partkey, l_quantity, l_extendedprice
                   FROM lineitem, part
                   WHERE p_partkey = l_partkey) AS outer_t
             WHERE outer_t.l_partkey = inner_t.l_partkey
               AND outer_t.l_quantity < inner_t.t1",
        );
        assert_eq!(count_ops(&p, "Join"), 2);
        assert_eq!(count_ops(&p, "Aggregate"), 2);
        assert_eq!(count_ops(&p, "Scan"), 3);
    }

    #[test]
    fn q_csa_builds() {
        let p = plan_of(
            "SELECT avg(pageview_count) FROM
            (SELECT c.uid, mp.ts1, (count(*)-2) AS pageview_count
             FROM clicks AS c,
                  (SELECT uid, max(ts1) AS ts1, ts2
                   FROM (SELECT c1.uid, c1.ts AS ts1, min(c2.ts) AS ts2
                         FROM clicks AS c1, clicks AS c2
                         WHERE c1.uid = c2.uid AND c1.ts < c2.ts
                           AND c1.cid = 1 AND c2.cid = 2
                         GROUP BY c1.uid, c1.ts) AS cp
                   GROUP BY uid, ts2) AS mp
             WHERE c.uid = mp.uid AND c.ts >= mp.ts1 AND c.ts <= mp.ts2
             GROUP BY c.uid, mp.ts1) AS pageview_counts",
        );
        // Plan shape of Fig. 2(a): JOIN1 (self-join), AGG1, AGG2, JOIN2, AGG3
        // and the final AGG4.
        assert_eq!(count_ops(&p, "Join"), 2);
        assert_eq!(count_ops(&p, "Aggregate"), 4);
        assert_eq!(count_ops(&p, "Scan"), 3);
    }

    #[test]
    fn computed_group_by_inserts_pre_project() {
        let p = plan_of("SELECT ts / 100, count(*) FROM clicks GROUP BY ts / 100");
        // one pre-Project (computing ts/100) and the Aggregate; final
        // projection may or may not be identity.
        assert!(count_ops(&p, "Project") >= 1);
        assert_eq!(count_ops(&p, "Aggregate"), 1);
    }
}
