//! # ysmart-plan — logical plans, partition keys and correlations
//!
//! This crate turns a parsed [`ysmart_sql::Query`] into a logical *query
//! plan tree* (§III of the paper) and computes the properties YSmart's
//! translation is built on:
//!
//! * **Partition keys** (§IV-A): for every shuffle-requiring node (join,
//!   aggregation, sort), the set of columns by which its MapReduce job
//!   partitions map output. Columns are tracked by *provenance* — the set of
//!   base-table columns a plan column is derived from — and equi-join
//!   predicates merge provenances, so `l_partkey` and `p_partkey` compare
//!   equal after `p_partkey = l_partkey` (paper footnote 3).
//! * **Correlations** (§IV): Input Correlation (two nodes read overlapping
//!   input relations), Transit Correlation (input correlation plus the same
//!   partition key) and Job Flow Correlation (a node shares its partition
//!   key with a child).
//! * **PK-candidate selection**: an aggregation with a multi-column `GROUP
//!   BY` may choose any non-empty subset as its partition key; YSmart picks
//!   the candidate that connects the maximal number of correlated nodes
//!   (§IV-A), implemented in [`correlation`].
//!
//! The plan is an arena ([`Plan`]) of [`NodeData`] so that nodes have stable
//! [`NodeId`]s — the correlation report and the job generator in
//! `ysmart-core` refer to nodes by id.

pub mod builder;
pub mod catalog;
pub mod correlation;
pub mod ddl;
pub mod error;
pub mod node;
pub mod pk;
pub mod stats;

pub use builder::{build_batch_plan, build_plan};
pub use catalog::Catalog;
pub use correlation::{analyze, analyze_with_stats, CorrelationReport};
pub use error::PlanError;
pub use node::{AggCall, JoinKind, NodeData, NodeId, Operator, Plan};
pub use pk::{InputRel, PartitionKey, PkColumn};
pub use stats::{Statistics, TableStats};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PlanError>;
