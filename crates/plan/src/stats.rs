//! Table statistics and cost-informed partition-key selection.
//!
//! The paper notes (§IV-A): *"Currently YSmart does not seek a solution
//! based on execution cost estimations due to the lack of statistics
//! information of data sets. Rather, YSmart uses a simple heuristic."*
//! This module implements the future-work direction: per-table row counts
//! and per-column distinct counts, used to
//!
//! 1. break ties between equally-connected PK candidates in favour of the
//!    higher-cardinality key (better reduce-side parallelism, less skew),
//!    and
//! 2. estimate the number of distinct shuffle keys of a job, so the
//!    translator can cap its reduce-task count — hundreds of reducers are
//!    useless for a key space of fifty values.

use std::collections::BTreeMap;

use ysmart_rel::{Row, Value};

use crate::pk::{PartitionKey, PkColumn};

/// Statistics for one base table.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Row count.
    pub rows: u64,
    /// Distinct non-NULL values per column name.
    pub distinct: BTreeMap<String, u64>,
}

/// Statistics for a database.
#[derive(Debug, Clone, Default)]
pub struct Statistics {
    tables: BTreeMap<String, TableStats>,
}

impl Statistics {
    /// An empty statistics set (all estimates unknown).
    #[must_use]
    pub fn new() -> Self {
        Statistics::default()
    }

    /// Registers statistics for a table.
    pub fn add_table(&mut self, name: &str, stats: TableStats) -> &mut Self {
        self.tables.insert(name.to_ascii_lowercase(), stats);
        self
    }

    /// Computes statistics for one table by scanning its rows (exact, not
    /// sampled — the generated instances are small; a production system
    /// would sample or sketch).
    #[must_use]
    pub fn scan_table(column_names: &[String], rows: &[Row]) -> TableStats {
        let mut sets: Vec<std::collections::BTreeSet<Value>> =
            vec![std::collections::BTreeSet::new(); column_names.len()];
        for r in rows {
            for (i, v) in r.values().iter().enumerate().take(sets.len()) {
                if !v.is_null() {
                    sets[i].insert(v.clone());
                }
            }
        }
        TableStats {
            rows: rows.len() as u64,
            distinct: column_names
                .iter()
                .cloned()
                .zip(sets.iter().map(|s| s.len() as u64))
                .collect(),
        }
    }

    /// Looks up the distinct count of a base column.
    #[must_use]
    pub fn distinct(&self, table: &str, column: &str) -> Option<u64> {
        self.tables
            .get(&table.to_ascii_lowercase())?
            .distinct
            .get(column)
            .copied()
    }

    /// Row count of a table.
    #[must_use]
    pub fn rows(&self, table: &str) -> Option<u64> {
        Some(self.tables.get(&table.to_ascii_lowercase())?.rows)
    }

    /// Estimated distinct values of one partition-key column: the maximum
    /// distinct count over its provenance columns (equi-joined columns
    /// share a key space; the larger side bounds it from above, and using
    /// the max is the optimistic estimate that favours parallelism).
    #[must_use]
    pub fn pk_column_cardinality(&self, col: &PkColumn) -> Option<u64> {
        col.cols
            .iter()
            .filter_map(|(t, c)| self.distinct(t, c))
            .max()
    }

    /// Estimated distinct key tuples of a partition key: the product of
    /// per-column cardinalities (independence assumption), `None` when any
    /// column is opaque or unknown.
    #[must_use]
    pub fn pk_cardinality(&self, pk: &PartitionKey) -> Option<u64> {
        if pk.is_empty() {
            return Some(1);
        }
        let mut est: u64 = 1;
        for col in &pk.columns {
            est = est.saturating_mul(self.pk_column_cardinality(col)?);
        }
        Some(est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use std::collections::BTreeSet;
    use ysmart_rel::row;

    #[test]
    fn scan_counts_rows_and_distincts() {
        let rows = vec![row![1i64, "a"], row![1i64, "b"], row![2i64, "b"]];
        let stats = Statistics::scan_table(&["k".to_string(), "s".to_string()], &rows);
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.distinct["k"], 2);
        assert_eq!(stats.distinct["s"], 2);
    }

    #[test]
    fn nulls_not_counted_as_distinct() {
        let rows = vec![Row::new(vec![Value::Null]), Row::new(vec![Value::Int(1)])];
        let stats = Statistics::scan_table(&["k".to_string()], &rows);
        assert_eq!(stats.distinct["k"], 1);
    }

    fn pk_col(table: &str, col: &str) -> PkColumn {
        PkColumn {
            slots: BTreeSet::from([(NodeId(0), 0)]),
            cols: BTreeSet::from([(table.to_string(), col.to_string())]),
        }
    }

    #[test]
    fn pk_cardinality_products_and_unknowns() {
        let mut stats = Statistics::new();
        stats.add_table(
            "t",
            TableStats {
                rows: 100,
                distinct: BTreeMap::from([("a".to_string(), 10), ("b".to_string(), 4)]),
            },
        );
        let a = PartitionKey::new(vec![pk_col("t", "a")]);
        let ab = PartitionKey::new(vec![pk_col("t", "a"), pk_col("t", "b")]);
        assert_eq!(stats.pk_cardinality(&a), Some(10));
        assert_eq!(stats.pk_cardinality(&ab), Some(40));
        let unknown = PartitionKey::new(vec![pk_col("u", "x")]);
        assert_eq!(stats.pk_cardinality(&unknown), None);
        assert_eq!(stats.pk_cardinality(&PartitionKey::default()), Some(1));
    }

    #[test]
    fn equi_joined_columns_take_max() {
        let mut stats = Statistics::new();
        stats.add_table(
            "l",
            TableStats {
                rows: 1000,
                distinct: BTreeMap::from([("k".to_string(), 200)]),
            },
        );
        stats.add_table(
            "p",
            TableStats {
                rows: 300,
                distinct: BTreeMap::from([("pk".to_string(), 300)]),
            },
        );
        let mut merged = pk_col("l", "k");
        merged.union_with(&pk_col("p", "pk"));
        assert_eq!(stats.pk_column_cardinality(&merged), Some(300));
    }
}
