//! Partition keys and column provenance.
//!
//! The paper's correlation definitions (§IV-A) hinge on comparing the
//! *Partition Key* (PK) of plan nodes — the columns by which each node's
//! MapReduce job partitions its map output. Comparing PKs by column *name*
//! is wrong twice over: `l_partkey` and `p_partkey` are different names for
//! the same key after the equi-join `p_partkey = l_partkey` (footnote 3),
//! and in a self-join `c1.ts` and `c2.ts` are the same name but carry
//! *different values* per output row.
//!
//! We therefore track column **provenance** at two granularities:
//!
//! * **slots** — `(scan node id, column index)` pairs. Two key columns with
//!   intersecting slot sets are *value-equal* along every row that reaches
//!   them (they are connected by pass-through projections and equi-join
//!   predicates). This is the sound basis for **job flow correlation**,
//!   where a parent operation is evaluated inside the child's reduce
//!   function and must see the same key values.
//! * **cols** — `(table, column)` names. Two jobs that scan the same base
//!   table and extract their keys from the same named columns partition the
//!   shared records identically, which is what **transit correlation**
//!   needs to share map output — even when the two jobs use *different scan
//!   instances* of that table.

use std::collections::BTreeSet;
use std::fmt;

use crate::node::{NodeId, Operator, Plan};

/// One input relation of a node's (one-op-one-job) MapReduce job.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InputRel {
    /// A base table read from the distributed file system.
    Base(String),
    /// The materialised output of another node's job.
    Derived(NodeId),
}

impl fmt::Display for InputRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputRel::Base(t) => f.write_str(t),
            InputRel::Derived(id) => write!(f, "out({id})"),
        }
    }
}

/// The provenance of one partition-key column.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PkColumn {
    /// `(scan node, column index)` slots this key column is value-equal to.
    pub slots: BTreeSet<(NodeId, usize)>,
    /// `(table, column)` names of those slots.
    pub cols: BTreeSet<(String, String)>,
}

impl PkColumn {
    /// An empty provenance (a computed column, e.g. an aggregate output).
    /// Empty provenances never match anything.
    #[must_use]
    pub fn opaque() -> Self {
        PkColumn::default()
    }

    /// Whether the column is a computed value with no base provenance.
    #[must_use]
    pub fn is_opaque(&self) -> bool {
        self.slots.is_empty()
    }

    /// Value-level equality witness (for job flow correlation).
    #[must_use]
    pub fn matches_value(&self, other: &PkColumn) -> bool {
        self.slots.intersection(&other.slots).next().is_some()
    }

    /// Table-level equality witness (for transit correlation).
    #[must_use]
    pub fn matches_table(&self, other: &PkColumn) -> bool {
        self.cols.intersection(&other.cols).next().is_some()
    }

    /// Unions another provenance into this one (equi-join key aliasing).
    pub fn union_with(&mut self, other: &PkColumn) {
        self.slots.extend(other.slots.iter().copied());
        self.cols.extend(other.cols.iter().cloned());
    }
}

impl fmt::Display for PkColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cols.is_empty() {
            return f.write_str("<computed>");
        }
        let names: Vec<String> = self.cols.iter().map(|(t, c)| format!("{t}.{c}")).collect();
        f.write_str(&names.join("≡"))
    }
}

/// A partition key: an (unordered) set of key columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionKey {
    /// The key columns.
    pub columns: Vec<PkColumn>,
}

impl PartitionKey {
    /// Creates a partition key.
    #[must_use]
    pub fn new(columns: Vec<PkColumn>) -> Self {
        PartitionKey { columns }
    }

    /// Whether the key has no columns (map-only nodes report this).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// "Same partition key" at value granularity — used for job flow
    /// correlation. Requires equal arity and a perfect matching of columns
    /// under [`PkColumn::matches_value`].
    #[must_use]
    pub fn matches_value(&self, other: &PartitionKey) -> bool {
        self.matches_by(other, PkColumn::matches_value)
    }

    /// "Same partition key" at table granularity — used for transit
    /// correlation.
    #[must_use]
    pub fn matches_table(&self, other: &PartitionKey) -> bool {
        self.matches_by(other, PkColumn::matches_table)
    }

    fn matches_by(
        &self,
        other: &PartitionKey,
        col_match: fn(&PkColumn, &PkColumn) -> bool,
    ) -> bool {
        if self.columns.is_empty()
            || other.columns.is_empty()
            || self.columns.len() != other.columns.len()
        {
            return false;
        }
        perfect_matching(&self.columns, &other.columns, col_match)
    }
}

impl fmt::Display for PartitionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// Backtracking perfect matching between two equal-length column lists
/// (arity is 1–3 in every workload query, so this is effectively constant
/// time).
fn perfect_matching(
    a: &[PkColumn],
    b: &[PkColumn],
    col_match: fn(&PkColumn, &PkColumn) -> bool,
) -> bool {
    fn go(
        i: usize,
        a: &[PkColumn],
        b: &[PkColumn],
        used: &mut Vec<bool>,
        col_match: fn(&PkColumn, &PkColumn) -> bool,
    ) -> bool {
        if i == a.len() {
            return true;
        }
        for j in 0..b.len() {
            if !used[j] && col_match(&a[i], &b[j]) {
                used[j] = true;
                if go(i + 1, a, b, used, col_match) {
                    return true;
                }
                used[j] = false;
            }
        }
        false
    }
    let mut used = vec![false; b.len()];
    go(0, a, b, &mut used, col_match)
}

/// Per-node, per-output-column provenance of a plan.
#[derive(Debug, Clone)]
pub struct Provenance {
    per_node: Vec<Vec<PkColumn>>,
}

impl Provenance {
    /// Computes provenance bottom-up for every node.
    ///
    /// Pass-through operators copy child provenance; equi-joins union the
    /// provenances of paired key columns (alias propagation); computed
    /// columns (aggregates, scalar expressions) are opaque.
    #[must_use]
    pub fn compute(plan: &Plan) -> Self {
        let mut per_node: Vec<Vec<PkColumn>> = vec![Vec::new(); plan.len()];
        for id in plan.ids() {
            let node = plan.node(id);
            debug_assert!(
                node.children.iter().all(|c| c.0 < id.0),
                "arena must be topologically ordered"
            );
            let prov = match &node.op {
                Operator::Scan { table, .. } => node
                    .schema
                    .fields()
                    .iter()
                    .enumerate()
                    .map(|(i, f)| PkColumn {
                        slots: BTreeSet::from([(id, i)]),
                        cols: BTreeSet::from([(table.clone(), f.name.clone())]),
                    })
                    .collect(),
                Operator::Batch => Vec::new(),
                Operator::Filter { .. }
                | Operator::Sort { .. }
                | Operator::Limit { .. }
                | Operator::Distinct => per_node[node.children[0].0].clone(),
                Operator::Project { exprs } => {
                    let child = &per_node[node.children[0].0];
                    exprs
                        .iter()
                        .map(|e| match e {
                            ysmart_rel::Expr::Column(i) => child[*i].clone(),
                            _ => PkColumn::opaque(),
                        })
                        .collect()
                }
                Operator::Join {
                    left_keys,
                    right_keys,
                    ..
                } => {
                    let left = per_node[node.children[0].0].clone();
                    let right = per_node[node.children[1].0].clone();
                    let left_len = left.len();
                    let mut out = left;
                    out.extend(right);
                    for (&l, &r) in left_keys.iter().zip(right_keys) {
                        let merged = {
                            let mut m = out[l].clone();
                            m.union_with(&out[left_len + r]);
                            m
                        };
                        out[l] = merged.clone();
                        out[left_len + r] = merged;
                    }
                    out
                }
                Operator::Aggregate { group_by, aggs, .. } => {
                    let child = &per_node[node.children[0].0];
                    let mut out: Vec<PkColumn> =
                        group_by.iter().map(|&g| child[g].clone()).collect();
                    out.extend(std::iter::repeat_with(PkColumn::opaque).take(aggs.len()));
                    out
                }
            };
            per_node[id.0] = prov;
        }
        Provenance { per_node }
    }

    /// Provenance of `node`'s output column `col`.
    #[must_use]
    pub fn column(&self, node: NodeId, col: usize) -> &PkColumn {
        &self.per_node[node.0][col]
    }

    /// All output-column provenances of a node.
    #[must_use]
    pub fn columns(&self, node: NodeId) -> &[PkColumn] {
        &self.per_node[node.0]
    }
}

/// Computes the partition key of a join node, a fixed (non-candidate) key.
#[must_use]
pub fn join_pk(plan: &Plan, prov: &Provenance, id: NodeId) -> PartitionKey {
    let node = plan.node(id);
    let Operator::Join {
        left_keys,
        right_keys,
        ..
    } = &node.op
    else {
        return PartitionKey::default();
    };
    let left = node.children[0];
    let right = node.children[1];
    let columns = left_keys
        .iter()
        .zip(right_keys)
        .map(|(&l, &r)| {
            let mut c = prov.column(left, l).clone();
            c.union_with(prov.column(right, r));
            c
        })
        .collect();
    PartitionKey::new(columns)
}

/// Enumerates the partition-key candidates of an aggregation node: every
/// non-empty subset of its grouping columns (§IV-A), each returned with the
/// positions (into the `GROUP BY` list) it covers. Group-by arity is small
/// in the supported subset; the enumeration is capped at 2^10 − 1
/// candidates as a safety bound.
#[must_use]
pub fn agg_pk_candidates(
    plan: &Plan,
    prov: &Provenance,
    id: NodeId,
) -> Vec<(Vec<usize>, PartitionKey)> {
    let node = plan.node(id);
    let Operator::Aggregate { group_by, .. } = &node.op else {
        return Vec::new();
    };
    let child = node.children[0];
    let cols: Vec<PkColumn> = group_by
        .iter()
        .map(|&g| prov.column(child, g).clone())
        .collect();
    let n = cols.len().min(10);
    let mut out = Vec::new();
    // Enumerate larger subsets first so that, on a score tie, the heuristic
    // keeps the full grouping key (better parallelism for equal merging).
    let mut masks: Vec<u32> = (1..(1u32 << n)).collect();
    masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
    for mask in masks {
        let positions: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        let columns: Vec<PkColumn> = positions.iter().map(|&i| cols[i].clone()).collect();
        out.push((positions, PartitionKey::new(columns)));
    }
    out
}

/// Computes the partition key of a sort node (its sort columns; expression
/// keys are opaque).
#[must_use]
pub fn sort_pk(plan: &Plan, prov: &Provenance, id: NodeId) -> PartitionKey {
    let node = plan.node(id);
    let Operator::Sort { keys } = &node.op else {
        return PartitionKey::default();
    };
    let child = node.children[0];
    let columns = keys
        .iter()
        .map(|k| match &k.expr {
            ysmart_rel::Expr::Column(i) => prov.column(child, *i).clone(),
            _ => PkColumn::opaque(),
        })
        .collect();
    PartitionKey::new(columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{JoinKind, PlanArena};
    use ysmart_rel::{DataType, Expr, Schema};

    fn scan(a: &mut PlanArena, table: &str, cols: &[&str]) -> NodeId {
        let fields: Vec<(&str, DataType)> = cols.iter().map(|c| (*c, DataType::Int)).collect();
        a.add(
            Operator::Scan {
                table: table.into(),
                binding: table.into(),
                predicate: None,
            },
            Schema::of(table, &fields),
            vec![],
        )
    }

    /// lineitem(l_partkey, l_quantity) ⋈ part(p_partkey) on key — footnote-3
    /// aliasing makes the two key columns one class.
    #[test]
    fn join_keys_union_provenance() {
        let mut a = PlanArena::new();
        let li = scan(&mut a, "lineitem", &["l_partkey", "l_quantity"]);
        let pt = scan(&mut a, "part", &["p_partkey"]);
        let j = a.add(
            Operator::Join {
                kind: JoinKind::Inner,
                left_keys: vec![0],
                right_keys: vec![0],
                residual: None,
            },
            a.node(li).schema.concat(&a.node(pt).schema),
            vec![li, pt],
        );
        let plan = a.finish(j);
        let prov = Provenance::compute(&plan);
        let pk = join_pk(&plan, &prov, j);
        assert_eq!(pk.columns.len(), 1);
        assert!(pk.columns[0]
            .cols
            .contains(&("lineitem".into(), "l_partkey".into())));
        assert!(pk.columns[0]
            .cols
            .contains(&("part".into(), "p_partkey".into())));
        // The join's output column 0 (l_partkey) and column 2 (p_partkey)
        // now share provenance.
        assert!(prov.column(j, 0).matches_value(prov.column(j, 2)));
    }

    /// Two scans of the same table: value-level provenance distinguishes the
    /// instances, table-level does not.
    #[test]
    fn self_join_instances_distinct_at_value_level() {
        let mut a = PlanArena::new();
        let c1 = scan(&mut a, "clicks", &["uid", "ts"]);
        let c2 = scan(&mut a, "clicks", &["uid", "ts"]);
        let plan_root = a.add(
            Operator::Join {
                kind: JoinKind::Inner,
                left_keys: vec![0],
                right_keys: vec![0],
                residual: None,
            },
            a.node(c1).schema.concat(&a.node(c2).schema),
            vec![c1, c2],
        );
        let plan = a.finish(plan_root);
        let prov = Provenance::compute(&plan);
        // c1.ts vs c2.ts: same (table, col) but different slots.
        let ts1 = prov.column(plan_root, 1);
        let ts2 = prov.column(plan_root, 3);
        assert!(ts1.matches_table(ts2));
        assert!(!ts1.matches_value(ts2));
        // c1.uid vs c2.uid: joined on uid, so value-equal too.
        assert!(prov
            .column(plan_root, 0)
            .matches_value(prov.column(plan_root, 2)));
    }

    #[test]
    fn aggregate_outputs_opaque_groups_pass_through() {
        let mut a = PlanArena::new();
        let s = scan(&mut a, "t", &["k", "v"]);
        let g = a.add(
            Operator::Aggregate {
                group_by: vec![0],
                aggs: vec![crate::node::AggCall {
                    func: ysmart_rel::AggFunc::Sum,
                    arg: Some(Expr::col(1)),
                }],
                having: None,
            },
            Schema::of("", &[("k", DataType::Int), ("sum_v", DataType::Int)]),
            vec![s],
        );
        let plan = a.finish(g);
        let prov = Provenance::compute(&plan);
        assert!(!prov.column(g, 0).is_opaque());
        assert!(prov.column(g, 1).is_opaque());
    }

    #[test]
    fn agg_candidates_enumerate_subsets_largest_first() {
        let mut a = PlanArena::new();
        let s = scan(&mut a, "t", &["a", "b", "v"]);
        let g = a.add(
            Operator::Aggregate {
                group_by: vec![0, 1],
                aggs: vec![],
                having: None,
            },
            Schema::of("", &[("a", DataType::Int), ("b", DataType::Int)]),
            vec![s],
        );
        let plan = a.finish(g);
        let prov = Provenance::compute(&plan);
        let cands = agg_pk_candidates(&plan, &prov, g);
        assert_eq!(cands.len(), 3); // {a,b}, {a}, {b}
        assert_eq!(cands[0].0, vec![0, 1]);
        assert_eq!(cands[0].1.columns.len(), 2);
    }

    #[test]
    fn pk_match_requires_equal_arity() {
        let one = PartitionKey::new(vec![PkColumn {
            slots: BTreeSet::from([(NodeId(0), 0)]),
            cols: BTreeSet::from([("t".into(), "a".into())]),
        }]);
        let two = PartitionKey::new(vec![one.columns[0].clone(), one.columns[0].clone()]);
        assert!(!one.matches_value(&two));
        assert!(one.matches_value(&one.clone()));
    }

    #[test]
    fn empty_pk_never_matches() {
        let empty = PartitionKey::default();
        assert!(!empty.matches_value(&empty.clone()));
    }

    #[test]
    fn opaque_columns_never_match() {
        let o = PartitionKey::new(vec![PkColumn::opaque()]);
        assert!(!o.matches_value(&o.clone()));
        assert!(!o.matches_table(&o.clone()));
    }

    #[test]
    fn perfect_matching_handles_permuted_keys() {
        let mk = |t: &str, c: &str, id: usize| PkColumn {
            slots: BTreeSet::from([(NodeId(id), 0)]),
            cols: BTreeSet::from([(t.to_string(), c.to_string())]),
        };
        let ab = PartitionKey::new(vec![mk("t", "a", 1), mk("t", "b", 2)]);
        let ba = PartitionKey::new(vec![mk("t", "b", 2), mk("t", "a", 1)]);
        assert!(ab.matches_value(&ba));
        assert!(ab.matches_table(&ba));
    }

    #[test]
    fn filter_and_project_pass_through() {
        let mut a = PlanArena::new();
        let s = scan(&mut a, "t", &["k", "v"]);
        let f = a.add(
            Operator::Filter {
                predicate: Expr::lit(true),
            },
            a.node(s).schema.clone(),
            vec![s],
        );
        let p = a.add(
            Operator::Project {
                exprs: vec![
                    Expr::col(1),
                    Expr::binary(ysmart_rel::BinOp::Add, Expr::col(0), Expr::lit(1i64)),
                ],
            },
            Schema::of("", &[("v", DataType::Int), ("kplus", DataType::Int)]),
            vec![f],
        );
        let plan = a.finish(p);
        let prov = Provenance::compute(&plan);
        assert!(prov.column(p, 0).cols.contains(&("t".into(), "v".into())));
        assert!(prov.column(p, 1).is_opaque());
    }
}
