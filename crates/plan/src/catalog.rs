//! The catalog: base-table schemas known to the planner.

use std::collections::BTreeMap;

use ysmart_rel::Schema;

use crate::error::PlanError;

/// Maps base-table names to their schemas.
///
/// Table names are stored lower-cased, matching the parser's identifier
/// folding.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Schema>,
}

impl Catalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table.
    pub fn add_table(&mut self, name: &str, schema: Schema) -> &mut Self {
        self.tables.insert(name.to_ascii_lowercase(), schema);
        self
    }

    /// Looks a table up.
    ///
    /// # Errors
    ///
    /// [`PlanError::UnknownTable`] when absent.
    pub fn table(&self, name: &str) -> Result<&Schema, PlanError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| PlanError::UnknownTable(name.to_string()))
    }

    /// Whether the table exists.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Iterates over `(name, schema)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Schema)> {
        self.tables.iter().map(|(n, s)| (n.as_str(), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ysmart_rel::DataType;

    #[test]
    fn add_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.add_table(
            "Lineitem",
            Schema::of("lineitem", &[("l_orderkey", DataType::Int)]),
        );
        assert!(c.contains("LINEITEM"));
        assert_eq!(c.table("lineitem").unwrap().len(), 1);
    }

    #[test]
    fn unknown_table_errors() {
        assert_eq!(
            Catalog::new().table("nope").unwrap_err(),
            PlanError::UnknownTable("nope".into())
        );
    }

    #[test]
    fn iteration_in_name_order() {
        let mut c = Catalog::new();
        c.add_table("b", Schema::default());
        c.add_table("a", Schema::default());
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
