//! Planning errors.

use std::fmt;

use ysmart_rel::RelError;

/// Errors raised while building a plan from an AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A `FROM` table is not in the catalog.
    UnknownTable(String),
    /// A column reference could not be resolved in the current scope.
    UnknownColumn(String),
    /// A column reference matched more than one column in scope.
    AmbiguousColumn(String),
    /// The same binding (alias/table name) appears twice in one `FROM`.
    DuplicateBinding(String),
    /// The query shape is outside the supported subset.
    Unsupported(String),
    /// A non-aggregated select item references columns outside `GROUP BY`.
    NotGrouped(String),
    /// An error bubbled up from the relational layer.
    Rel(RelError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            PlanError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            PlanError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            PlanError::DuplicateBinding(b) => {
                write!(f, "duplicate relation binding `{b}` in FROM")
            }
            PlanError::Unsupported(what) => write!(f, "unsupported query shape: {what}"),
            PlanError::NotGrouped(c) => write!(
                f,
                "column `{c}` must appear in GROUP BY or be used in an aggregate"
            ),
            PlanError::Rel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Rel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for PlanError {
    fn from(e: RelError) -> Self {
        match e {
            RelError::UnknownColumn(c) => PlanError::UnknownColumn(c),
            RelError::AmbiguousColumn(c) => PlanError::AmbiguousColumn(c),
            other => PlanError::Rel(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_errors_map_to_column_errors() {
        let e: PlanError = RelError::UnknownColumn("x".into()).into();
        assert_eq!(e, PlanError::UnknownColumn("x".into()));
        let e: PlanError = RelError::DivideByZero.into();
        assert!(matches!(e, PlanError::Rel(_)));
    }

    #[test]
    fn display_nonempty() {
        assert!(!PlanError::Unsupported("x".into()).to_string().is_empty());
    }
}
