//! Minimal DDL: `CREATE TABLE` statements for building a [`Catalog`] from
//! text — what the stand-alone translator binary reads as its schema file.
//!
//! ```text
//! CREATE TABLE lineitem (
//!     l_orderkey INT,
//!     l_quantity DOUBLE,
//!     l_comment  STRING
//! );
//! ```
//!
//! Type names map onto the four runtime types: `INT`/`BIGINT`/`INTEGER`/
//! `TIMESTAMP` → `Int`; `FLOAT`/`DOUBLE`/`DECIMAL`/`REAL` → `Float`;
//! `STRING`/`VARCHAR`/`CHAR`/`TEXT` → `Str`; `BOOL`/`BOOLEAN` → `Bool`.

use ysmart_rel::{DataType, Schema};
use ysmart_sql::lexer::{Lexer, Token, TokenKind};
use ysmart_sql::ParseError;

use crate::catalog::Catalog;
use crate::error::PlanError;

impl Catalog {
    /// Parses a sequence of `CREATE TABLE` statements into a catalog.
    ///
    /// # Errors
    ///
    /// [`PlanError::Unsupported`] with a description of the syntax problem
    /// (wrapping the lexer's positioned errors).
    pub fn parse_ddl(ddl: &str) -> Result<Catalog, PlanError> {
        let tokens = Lexer::new(ddl)
            .tokenize()
            .map_err(|e: ParseError| PlanError::Unsupported(format!("DDL: {e}")))?;
        let mut p = DdlParser { tokens, pos: 0 };
        let mut catalog = Catalog::new();
        while !p.at_eof() {
            let (name, schema) = p.parse_create_table()?;
            catalog.add_table(&name, schema);
        }
        Ok(catalog)
    }
}

struct DdlParser {
    tokens: Vec<Token>,
    pos: usize,
}

impl DdlParser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn advance(&mut self) {
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), PlanError> {
        match self.peek() {
            TokenKind::Ident(s) if s == kw => {
                self.advance();
                Ok(())
            }
            other => Err(PlanError::Unsupported(format!(
                "DDL: expected `{}`, found {other}",
                kw.to_uppercase()
            ))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, PlanError> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(PlanError::Unsupported(format!(
                "DDL: expected an identifier, found {other}"
            ))),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), PlanError> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(PlanError::Unsupported(format!(
                "DDL: expected `{kind}`, found {}",
                self.peek()
            )))
        }
    }

    fn parse_create_table(&mut self) -> Result<(String, Schema), PlanError> {
        self.expect_kw("create")?;
        self.expect_kw("table")?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut cols: Vec<(String, DataType)> = Vec::new();
        loop {
            let col = self.expect_ident()?;
            let ty_name = self.expect_ident()?;
            let ty = type_of(&ty_name)?;
            // Optional precision like DECIMAL(15, 2).
            if self.peek() == &TokenKind::LParen {
                while self.peek() != &TokenKind::RParen && !self.at_eof() {
                    self.advance();
                }
                self.expect(&TokenKind::RParen)?;
            }
            cols.push((col, ty));
            match self.peek() {
                TokenKind::Comma => self.advance(),
                TokenKind::RParen => {
                    self.advance();
                    break;
                }
                other => {
                    return Err(PlanError::Unsupported(format!(
                        "DDL: expected `,` or `)`, found {other}"
                    )))
                }
            }
        }
        if self.peek() == &TokenKind::Semicolon {
            self.advance();
        }
        let refs: Vec<(&str, DataType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        Ok((name.clone(), Schema::of(&name, &refs)))
    }
}

fn type_of(name: &str) -> Result<DataType, PlanError> {
    Ok(match name {
        "int" | "bigint" | "integer" | "smallint" | "timestamp" | "date" => DataType::Int,
        "float" | "double" | "decimal" | "real" | "numeric" => DataType::Float,
        "string" | "varchar" | "char" | "text" => DataType::Str,
        "bool" | "boolean" => DataType::Bool,
        other => {
            return Err(PlanError::Unsupported(format!(
                "DDL: unknown column type `{other}`"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multiple_tables() {
        let ddl = "
            CREATE TABLE clicks (uid INT, page STRING, ts TIMESTAMP);
            CREATE TABLE prices (item INT, price DECIMAL(15,2));
        ";
        let c = Catalog::parse_ddl(ddl).unwrap();
        assert!(c.contains("clicks"));
        let s = c.table("prices").unwrap();
        assert_eq!(s.field(1).data_type, DataType::Float);
        assert_eq!(c.table("clicks").unwrap().field(2).data_type, DataType::Int);
    }

    #[test]
    fn case_insensitive_keywords_and_types() {
        let c = Catalog::parse_ddl("create table T (A Int, B Varchar(10))").unwrap();
        assert_eq!(c.table("t").unwrap().len(), 2);
    }

    #[test]
    fn unknown_type_rejected() {
        let e = Catalog::parse_ddl("CREATE TABLE t (a BLOB)").unwrap_err();
        assert!(e.to_string().contains("unknown column type"));
    }

    #[test]
    fn syntax_errors_positioned() {
        assert!(Catalog::parse_ddl("CREATE VIEW v (a INT)").is_err());
        assert!(Catalog::parse_ddl("CREATE TABLE t a INT").is_err());
    }

    #[test]
    fn empty_input_gives_empty_catalog() {
        let c = Catalog::parse_ddl("   ").unwrap();
        assert_eq!(c.iter().count(), 0);
    }
}
