//! Property-based tests of planning invariants: structural well-formedness
//! of built plans, symmetry of partition-key matching, and determinism of
//! the correlation analysis.

use proptest::prelude::*;
use ysmart_plan::{analyze, build_plan, Catalog, Operator, PartitionKey, PkColumn};
use ysmart_rel::{DataType, Schema};
use ysmart_sql::parse;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "t",
        Schema::of(
            "t",
            &[
                ("k", DataType::Int),
                ("g", DataType::Int),
                ("v", DataType::Int),
            ],
        ),
    );
    c.add_table(
        "u",
        Schema::of("u", &[("k", DataType::Int), ("w", DataType::Int)]),
    );
    c
}

/// A small random query generator over the two-table catalog.
fn arb_sql() -> impl Strategy<Value = String> {
    let agg = prop::sample::select(vec!["count(*)", "sum(v)", "min(v)", "max(v)", "avg(v)"]);
    let jt = prop::sample::select(vec!["JOIN", "LEFT OUTER JOIN", "FULL OUTER JOIN"]);
    prop_oneof![
        // filtered projection
        (-50i64..50).prop_map(|c| format!("SELECT k, v FROM t WHERE v > {c}")),
        // grouped aggregation
        (agg.clone(), -50i64..50)
            .prop_map(|(a, c)| format!("SELECT g, {a} FROM t WHERE v > {c} GROUP BY g")),
        // join + aggregation
        (agg, jt)
            .prop_map(|(a, j)| format!("SELECT t.k, {a} FROM t {j} u ON t.k = u.k GROUP BY t.k")),
        // self-join
        (0i64..5).prop_map(|c| format!(
            "SELECT t1.k, count(*) FROM t AS t1, t AS t2 \
             WHERE t1.k = t2.k AND t1.g = {c} GROUP BY t1.k"
        )),
        // nested aggregation-then-join
        (-20i64..20).prop_map(|c| format!(
            "SELECT s.g, s.total FROM \
             (SELECT g, sum(v) AS total FROM t GROUP BY g) AS s, u \
             WHERE s.g = u.k AND s.total > {c}"
        )),
        // distinct + order + limit
        (1u64..20).prop_map(|n| format!("SELECT DISTINCT g FROM t ORDER BY g DESC LIMIT {n}")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every generated query plans, and the plan is structurally sound:
    /// children precede parents, schemas are non-empty, expression columns
    /// stay within child widths.
    #[test]
    fn plans_structurally_sound(sql in arb_sql()) {
        let plan = build_plan(&catalog(), &parse(&sql).unwrap()).unwrap();
        let order = plan.post_order(plan.root());
        prop_assert_eq!(*order.last().unwrap(), plan.root());
        for id in plan.ids() {
            let node = plan.node(id);
            for &c in &node.children {
                prop_assert!(c.0 < id.0, "arena is topologically ordered");
            }
            match &node.op {
                Operator::Project { exprs } => {
                    let child_w = plan.node(node.children[0]).schema.len();
                    for e in exprs {
                        for col in e.referenced_columns() {
                            prop_assert!(col < child_w);
                        }
                    }
                    prop_assert_eq!(exprs.len(), node.schema.len());
                }
                Operator::Join { left_keys, right_keys, .. } => {
                    prop_assert_eq!(left_keys.len(), right_keys.len());
                    prop_assert!(!left_keys.is_empty());
                    let lw = plan.node(node.children[0]).schema.len();
                    let rw = plan.node(node.children[1]).schema.len();
                    prop_assert!(left_keys.iter().all(|&k| k < lw));
                    prop_assert!(right_keys.iter().all(|&k| k < rw));
                    prop_assert_eq!(node.schema.len(), lw + rw);
                }
                Operator::Aggregate { group_by, aggs, .. } => {
                    let child_w = plan.node(node.children[0]).schema.len();
                    prop_assert!(group_by.iter().all(|&g| g < child_w));
                    prop_assert_eq!(node.schema.len(), group_by.len() + aggs.len());
                }
                _ => {}
            }
        }
    }

    /// Correlation analysis is deterministic and internally consistent:
    /// TC pairs are also IC pairs, and JFC edges link parents to their
    /// effective children.
    #[test]
    fn analysis_deterministic_and_consistent(sql in arb_sql()) {
        let plan = build_plan(&catalog(), &parse(&sql).unwrap()).unwrap();
        let r1 = analyze(&plan);
        let r2 = analyze(&plan);
        prop_assert_eq!(&r1.transit_correlated, &r2.transit_correlated);
        prop_assert_eq!(&r1.job_flow, &r2.job_flow);
        for &(a, b) in &r1.transit_correlated {
            prop_assert!(r1.has_ic(a, b), "TC implies IC");
        }
        for &(p, c) in &r1.job_flow {
            prop_assert!(r1.info(p).shuffle_children.contains(&c));
        }
    }

    /// Partition-key matching is symmetric at both granularities.
    #[test]
    fn pk_matching_symmetric(sql in arb_sql()) {
        let plan = build_plan(&catalog(), &parse(&sql).unwrap()).unwrap();
        let report = analyze(&plan);
        for a in &report.nodes {
            for b in &report.nodes {
                prop_assert_eq!(a.pk.matches_value(&b.pk), b.pk.matches_value(&a.pk));
                prop_assert_eq!(a.pk.matches_table(&b.pk), b.pk.matches_table(&a.pk));
            }
        }
    }
}

#[test]
fn opaque_pk_columns_never_match_themselves() {
    let pk = PartitionKey::new(vec![PkColumn::opaque()]);
    assert!(!pk.matches_value(&pk.clone()));
    assert!(!pk.matches_table(&pk.clone()));
}
