//! Top-level errors of the translation/execution pipeline.

use std::fmt;

use ysmart_exec::ExecError;
use ysmart_mapred::MapRedError;
use ysmart_plan::PlanError;
use ysmart_rel::RelError;
use ysmart_sql::ParseError;

/// Any failure between SQL text and result rows.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// SQL syntax error.
    Parse(ParseError),
    /// Planning/name-resolution error.
    Plan(PlanError),
    /// Blueprint construction or validation error.
    Exec(ExecError),
    /// Cluster execution error (disk full, time limit, …).
    MapRed(MapRedError),
    /// Result decoding error.
    Rel(RelError),
    /// A translation invariant was violated (a bug or unsupported shape).
    Translate(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(e) => write!(f, "{e}"),
            CoreError::Plan(e) => write!(f, "planning: {e}"),
            CoreError::Exec(e) => write!(f, "{e}"),
            CoreError::MapRed(e) => write!(f, "{e}"),
            CoreError::Rel(e) => write!(f, "result decoding: {e}"),
            CoreError::Translate(msg) => write!(f, "translation: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Parse(e) => Some(e),
            CoreError::Plan(e) => Some(e),
            CoreError::Exec(e) => Some(e),
            CoreError::MapRed(e) => Some(e),
            CoreError::Rel(e) => Some(e),
            CoreError::Translate(_) => None,
        }
    }
}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Parse(e)
    }
}

impl From<PlanError> for CoreError {
    fn from(e: PlanError) -> Self {
        CoreError::Plan(e)
    }
}

impl From<ExecError> for CoreError {
    fn from(e: ExecError) -> Self {
        CoreError::Exec(e)
    }
}

impl From<MapRedError> for CoreError {
    fn from(e: MapRedError) -> Self {
        CoreError::MapRed(e)
    }
}

impl From<RelError> for CoreError {
    fn from(e: RelError) -> Self {
        CoreError::Rel(e)
    }
}

impl CoreError {
    /// Whether the failure is the simulated cluster running out of local
    /// disk (the way Pig's Q-CSA run ends, §VII-D).
    #[must_use]
    pub fn is_disk_full(&self) -> bool {
        matches!(self, CoreError::MapRed(MapRedError::DiskFull { .. }))
    }

    /// Whether the failure is the configured time cap (Fig. 11's one-hour
    /// cut-off).
    #[must_use]
    pub fn is_time_limit(&self) -> bool {
        matches!(
            self,
            CoreError::MapRed(MapRedError::TimeLimitExceeded { .. })
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_predicates() {
        let e: CoreError = MapRedError::DiskFull {
            nodes: 2,
            per_node_bytes: 2,
            capacity_bytes: 1,
        }
        .into();
        assert!(e.is_disk_full());
        assert!(!e.is_time_limit());
        let e: CoreError = MapRedError::TimeLimitExceeded { limit_s: 1.0 }.into();
        assert!(e.is_time_limit());
        assert!(std::error::Error::source(&e).is_some());
    }
}
