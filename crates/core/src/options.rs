//! Translation strategies: YSmart and the systems the paper compares —
//! plus the fault-injection knobs applied on top of a cluster preset.

use ysmart_mapred::{
    BlacklistPolicy, ClusterConfig, CorruptionModel, FailureModel, NodeFailureModel, RetryPolicy,
};

/// Which rule set and execution style the translator applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strategy {
    /// One-operation-to-one-job, with Hive's map-side hash aggregation
    /// (footnote 2). The baseline the paper measures throughout §VII.
    Hive,
    /// One-operation-to-one-job without a combiner and with bulkier
    /// intermediate serialisation — the observed Pig behaviour (slower than
    /// Hive; ran out of intermediate disk on Q-CSA).
    Pig,
    /// YSmart with only input/transit correlation (Rule 1) — the
    /// "no job flow correlation" configuration of Fig. 9, where merged
    /// operations still write their own outputs to HDFS.
    YSmartNoJfc,
    /// Full YSmart: Rules 1–4.
    YSmart,
    /// The paper's hand-optimised programs: YSmart's merged jobs plus
    /// reduce-side short-circuiting (§VII-C case 4).
    HandCoded,
}

impl Strategy {
    /// The option set this strategy expands to.
    #[must_use]
    pub fn options(self) -> TranslateOptions {
        match self {
            Strategy::Hive => TranslateOptions {
                merge_ic_tc: false,
                merge_jfc: false,
                shared_scan: false,
                combiner: true,
                short_circuit: false,
                value_pad_bytes: 0,
            },
            Strategy::Pig => TranslateOptions {
                merge_ic_tc: false,
                merge_jfc: false,
                shared_scan: false,
                combiner: false,
                short_circuit: false,
                value_pad_bytes: 24,
            },
            Strategy::YSmartNoJfc => TranslateOptions {
                merge_ic_tc: true,
                merge_jfc: false,
                shared_scan: true,
                combiner: true,
                short_circuit: false,
                value_pad_bytes: 0,
            },
            Strategy::YSmart => TranslateOptions {
                merge_ic_tc: true,
                merge_jfc: true,
                shared_scan: true,
                combiner: true,
                short_circuit: false,
                value_pad_bytes: 0,
            },
            Strategy::HandCoded => TranslateOptions {
                merge_ic_tc: true,
                merge_jfc: true,
                shared_scan: true,
                combiner: true,
                short_circuit: true,
                value_pad_bytes: 0,
            },
        }
    }

    /// All strategies, for sweeps.
    #[must_use]
    pub fn all() -> [Strategy; 5] {
        [
            Strategy::Hive,
            Strategy::Pig,
            Strategy::YSmartNoJfc,
            Strategy::YSmart,
            Strategy::HandCoded,
        ]
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::Hive => "hive",
            Strategy::Pig => "pig",
            Strategy::YSmartNoJfc => "ysmart-no-jfc",
            Strategy::YSmart => "ysmart",
            Strategy::HandCoded => "hand-coded",
        };
        f.write_str(s)
    }
}

/// Fine-grained translation switches (derived from [`Strategy`], or set
/// directly for ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslateOptions {
    /// Apply Rule 1: merge jobs with input + transit correlation.
    pub merge_ic_tc: bool,
    /// Apply Rules 2–4: evaluate JFC parents in the child job's reduce.
    pub merge_jfc: bool,
    /// Share one table scan among branches on the same input (self-join
    /// single-scan optimisation of §V-A and the IC sharing of Rule 1).
    pub shared_scan: bool,
    /// Enable the map-side combiner on eligible aggregation jobs.
    pub combiner: bool,
    /// Skip keys whose required join streams are empty (§VII-C case 4).
    pub short_circuit: bool,
    /// Pad map-output values by this many bytes (Pig serialisation bloat).
    pub value_pad_bytes: usize,
}

/// Fault-injection and recovery knobs, bundled so experiment harnesses can
/// sweep them over any [`ClusterConfig`] preset without reaching into the
/// individual fields.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultOptions {
    /// Per-task-attempt failure injection.
    pub task_failures: Option<FailureModel>,
    /// Whole-node death injection.
    pub node_failures: Option<NodeFailureModel>,
    /// Chain-level retry with exponential backoff.
    pub retry: Option<RetryPolicy>,
    /// Byte-level corruption injection (blocks, shuffle segments, records).
    pub corruption: Option<CorruptionModel>,
    /// Bad-record budget per job: malformed input records skipped before
    /// the job fails. Meaningless without `corruption.record_rate > 0`.
    pub skip_bad_records: u64,
    /// Node blacklisting for repeat offenders.
    pub blacklist: Option<BlacklistPolicy>,
}

impl FaultOptions {
    /// A fault profile for sweeps: node deaths at `probability` plus a
    /// moderate task-failure rate, recovered by the default retry policy.
    #[must_use]
    pub fn injected(probability: f64, seed: u64) -> Self {
        FaultOptions {
            task_failures: Some(FailureModel {
                probability: (probability / 2.0).min(0.3),
                seed: seed ^ 0xF417,
            }),
            node_failures: Some(NodeFailureModel { probability, seed }),
            retry: Some(RetryPolicy::default()),
            ..FaultOptions::default()
        }
    }

    /// A data-integrity profile: uniform byte corruption at `rate` across
    /// blocks, shuffle segments and records, with a generous skip budget,
    /// blacklisting, and the default retry policy to recover attempts that
    /// lose every replica of a block.
    #[must_use]
    pub fn corrupted(rate: f64, seed: u64) -> Self {
        FaultOptions {
            corruption: Some(CorruptionModel::uniform(rate, seed)),
            skip_bad_records: u64::MAX,
            blacklist: Some(BlacklistPolicy::default()),
            retry: Some(RetryPolicy::default()),
            ..FaultOptions::default()
        }
    }

    /// Writes the knobs into a cluster configuration (an unset knob clears
    /// the corresponding field, so applying `FaultOptions::default()`
    /// disables injection).
    pub fn apply(&self, cfg: &mut ClusterConfig) {
        cfg.failures = self.task_failures;
        cfg.node_failures = self.node_failures;
        cfg.retry = self.retry;
        cfg.corruption = self.corruption;
        cfg.skip_bad_records = self.skip_bad_records;
        cfg.blacklist = self.blacklist;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_options_apply_and_clear() {
        let mut cfg = ClusterConfig::default();
        let faults = FaultOptions::injected(0.2, 7);
        faults.apply(&mut cfg);
        assert!(cfg.failures.is_some());
        assert_eq!(cfg.node_failures.unwrap().probability, 0.2);
        assert!(cfg.retry.is_some());
        FaultOptions::default().apply(&mut cfg);
        assert!(cfg.failures.is_none() && cfg.node_failures.is_none() && cfg.retry.is_none());
    }

    #[test]
    fn corruption_profile_applies_and_clears() {
        let mut cfg = ClusterConfig::default();
        FaultOptions::corrupted(1e-3, 9).apply(&mut cfg);
        assert_eq!(cfg.corruption.unwrap().block_rate, 1e-3);
        assert_eq!(cfg.skip_bad_records, u64::MAX);
        assert!(cfg.blacklist.is_some() && cfg.retry.is_some());
        assert!(cfg.failures.is_none(), "pure integrity profile");
        FaultOptions::default().apply(&mut cfg);
        assert!(cfg.corruption.is_none() && cfg.blacklist.is_none());
        assert_eq!(cfg.skip_bad_records, 0);
    }

    #[test]
    fn presets_match_paper_systems() {
        assert!(Strategy::Hive.options().combiner);
        assert!(!Strategy::Hive.options().merge_ic_tc);
        assert!(!Strategy::Pig.options().combiner);
        assert!(Strategy::Pig.options().value_pad_bytes > 0);
        assert!(Strategy::YSmartNoJfc.options().merge_ic_tc);
        assert!(!Strategy::YSmartNoJfc.options().merge_jfc);
        assert!(Strategy::YSmart.options().merge_jfc);
        assert!(Strategy::HandCoded.options().short_circuit);
        assert_eq!(Strategy::all().len(), 5);
    }

    #[test]
    fn display_names() {
        assert_eq!(Strategy::YSmart.to_string(), "ysmart");
        assert_eq!(Strategy::HandCoded.to_string(), "hand-coded");
    }
}
