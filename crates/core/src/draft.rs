//! Job drafts and the merging rules (§V-B).
//!
//! A *draft* is a set of shuffle nodes destined for one MapReduce job,
//! plus its dependencies on other drafts (a dependency exists when a node
//! reads the materialised output of a node in another draft). Drafts start
//! one-per-node (the one-operation-to-one-job translation of §V-A) and are
//! merged by:
//!
//! * **Rule 1** (first step): drafts containing nodes with input + transit
//!   correlation merge, provided neither draft depends on the other —
//!   dependent nodes are job-flow territory, not Rule 1's.
//! * **Rules 2–4** (second step): a node with job flow correlation to a
//!   child is moved into the child's draft. Rule 4's "child exchange"
//!   materialises as a dependency edge: the merged job runs after the
//!   non-correlated side's job, exactly the sequencing Fig. 7(b) shows.
//!
//! Merging is gated on *positional* key compatibility on top of the
//! report's set-based matching: co-partitioning requires the shuffle key
//! tuples to align column-by-column, which is trivially true for the
//! single-column keys of the paper's workloads and checked explicitly for
//! wider keys.

use std::collections::{BTreeSet, HashMap};

use ysmart_plan::{CorrelationReport, NodeId, Operator, PartitionKey, Plan};

use crate::options::TranslateOptions;

/// One future MapReduce job.
#[derive(Debug, Clone, PartialEq)]
pub struct Draft {
    /// The shuffle nodes merged into this job, in plan post-order.
    pub nodes: Vec<NodeId>,
    /// Indices (into the returned draft list) of drafts that must run
    /// before this one.
    pub deps: BTreeSet<usize>,
}

struct Builder<'a> {
    plan: &'a Plan,
    /// union-find parent per original draft index.
    parent: Vec<usize>,
    nodes: Vec<Vec<NodeId>>,
    deps: Vec<BTreeSet<usize>>,
    draft_of: HashMap<NodeId, usize>,
    post_pos: HashMap<NodeId, usize>,
}

impl<'a> Builder<'a> {
    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, into: usize, from: usize) {
        let (into, from) = (self.find(into), self.find(from));
        if into == from {
            return;
        }
        self.parent[from] = into;
        let moved = std::mem::take(&mut self.nodes[from]);
        self.nodes[into].extend(moved);
        let pos = &self.post_pos;
        self.nodes[into].sort_by_key(|n| pos[n]);
        let moved_deps = std::mem::take(&mut self.deps[from]);
        self.deps[into].extend(moved_deps);
    }

    /// Whether draft `a` (transitively) depends on draft `b`.
    fn depends(&mut self, a: usize, b: usize) -> bool {
        let b = self.find(b);
        let mut seen = BTreeSet::new();
        let mut stack = vec![self.find(a)];
        while let Some(d) = stack.pop() {
            if !seen.insert(d) {
                continue;
            }
            let deps: Vec<usize> = self.deps[d].iter().copied().collect();
            for dep in deps {
                let dep = self.find(dep);
                if dep == b {
                    return true;
                }
                stack.push(dep);
            }
        }
        false
    }

    fn draft_of(&mut self, n: NodeId) -> usize {
        let d = self.draft_of[&n];
        self.find(d)
    }
}

/// Positional key compatibility: set-based PK matching is enough for
/// single-column keys; wider keys must align column-by-column so that the
/// composed shuffle key tuples collide.
fn pk_aligned(a: &PartitionKey, b: &PartitionKey, value_level: bool) -> bool {
    if a.columns.len() != b.columns.len() {
        return false;
    }
    if a.columns.len() == 1 {
        return true; // set match (already established) == positional match
    }
    a.columns.iter().zip(&b.columns).all(|(x, y)| {
        if value_level {
            x.matches_value(y)
        } else {
            x.matches_table(y)
        }
    })
}

/// Builds the final, topologically ordered draft list for a plan.
///
/// With all options off this is exactly the one-operation-to-one-job
/// translation; enabling `merge_ic_tc`/`merge_jfc` applies the paper's
/// rules.
#[must_use]
pub fn build_drafts(
    plan: &Plan,
    report: &CorrelationReport,
    opts: &TranslateOptions,
) -> Vec<Draft> {
    let shuffle_nodes: Vec<NodeId> = report.nodes.iter().map(|n| n.id).collect();
    let post: Vec<NodeId> = plan.post_order(plan.root());
    let post_pos: HashMap<NodeId, usize> = post.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    let mut b = Builder {
        plan,
        parent: (0..shuffle_nodes.len()).collect(),
        nodes: shuffle_nodes.iter().map(|&n| vec![n]).collect(),
        deps: vec![BTreeSet::new(); shuffle_nodes.len()],
        draft_of: shuffle_nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect(),
        post_pos,
    };
    let _ = b.plan;

    // Initial dependencies: each node's job reads its shuffle children's
    // outputs.
    for (i, &n) in shuffle_nodes.iter().enumerate() {
        for &c in &report.info(n).shuffle_children {
            let cd = b.draft_of[&c];
            b.deps[i].insert(cd);
        }
    }

    // ---- Step 1: Rule 1 (input + transit correlation) ---------------------
    if opts.merge_ic_tc {
        loop {
            let mut merged_any = false;
            'outer: for i in 0..shuffle_nodes.len() {
                for j in (i + 1)..shuffle_nodes.len() {
                    let (di, dj) = (b.find(i), b.find(j));
                    if di == dj {
                        continue;
                    }
                    let tc = b.nodes[di].iter().any(|&na| {
                        b.nodes[dj].iter().any(|&nb| {
                            report.has_tc(na, nb)
                                && pk_aligned(&report.info(na).pk, &report.info(nb).pk, false)
                        })
                    });
                    if tc && !b.depends(di, dj) && !b.depends(dj, di) {
                        b.union(di, dj);
                        merged_any = true;
                        break 'outer;
                    }
                }
            }
            if !merged_any {
                break;
            }
        }
    }

    // ---- Step 2: Rules 2–4 (job flow correlation) --------------------------
    if opts.merge_jfc {
        for &p in &shuffle_nodes {
            let dp = b.draft_of(p);
            if b.nodes[dp].len() != 1 {
                // Only move single-node drafts; a draft that already hosts
                // other operations stays put (conservative, and sufficient
                // for the paper's rule set — merged parents are always
                // single operations at the time their rule applies).
                continue;
            }
            let info = report.info(p);
            let node = plan.node(p);
            match &node.op {
                // Rule 2: aggregation into its only preceding job.
                Operator::Aggregate { .. } => {
                    if let [c] = info.shuffle_children[..] {
                        if report.has_jfc(p, c) && pk_aligned(&info.pk, &report.info(c).pk, true) {
                            let dc = b.draft_of(c);
                            b.union(dc, dp);
                        }
                    }
                }
                // Rules 3 and 4: joins.
                Operator::Join { .. } => {
                    let children = info.shuffle_children.clone();
                    let jfc: Vec<NodeId> = children
                        .iter()
                        .copied()
                        .filter(|&c| {
                            report.has_jfc(p, c) && pk_aligned(&info.pk, &report.info(c).pk, true)
                        })
                        .collect();
                    if jfc.is_empty() {
                        continue;
                    }
                    // Rule 3: both preceding jobs already share a draft.
                    if children.len() == 2 {
                        let (d0, d1) = (b.draft_of(children[0]), b.draft_of(children[1]));
                        if d0 == d1 && jfc.len() == 2 {
                            b.union(d0, dp);
                            continue;
                        }
                    }
                    // Rule 4: merge into a JFC child's draft; the other
                    // child's job must run first (dependency edge). Try each
                    // JFC child until one is acyclic.
                    'try_children: for &c1 in &jfc {
                        let d1 = b.draft_of(c1);
                        let mut new_deps: Vec<usize> = Vec::new();
                        for &c2 in &children {
                            if c2 == c1 {
                                continue;
                            }
                            let d2 = b.draft_of(c2);
                            if d2 == d1 {
                                continue;
                            }
                            if b.depends(d2, d1) {
                                continue 'try_children; // would create a cycle
                            }
                            new_deps.push(d2);
                        }
                        b.union(d1, dp);
                        let d1 = b.find(d1);
                        for d2 in new_deps {
                            let d2 = b.find(d2);
                            if d2 != d1 {
                                b.deps[d1].insert(d2);
                            }
                        }
                        break;
                    }
                }
                _ => {}
            }
        }
    }

    // ---- Collect alive drafts and topo-sort --------------------------------
    let alive: Vec<usize> = (0..shuffle_nodes.len())
        .filter(|&i| b.find(i) == i && !b.nodes[i].is_empty())
        .collect();
    let index_of: HashMap<usize, usize> = alive.iter().enumerate().map(|(k, &i)| (i, k)).collect();
    let mut drafts: Vec<Draft> = Vec::with_capacity(alive.len());
    for &i in &alive {
        let raw_deps: Vec<usize> = b.deps[i].iter().copied().collect();
        let mut deps = BTreeSet::new();
        for d in raw_deps {
            let r = b.find(d);
            if r != i {
                deps.insert(index_of[&r]);
            }
        }
        drafts.push(Draft {
            nodes: b.nodes[i].clone(),
            deps,
        });
    }

    // Kahn topological sort, stable by original order.
    let n = drafts.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        let mut progressed = false;
        for i in 0..n {
            if !placed[i] && drafts[i].deps.iter().all(|&d| placed[d]) {
                placed[i] = true;
                order.push(i);
                progressed = true;
            }
        }
        assert!(progressed, "cyclic draft dependencies");
    }
    let renumber: HashMap<usize, usize> = order.iter().enumerate().map(|(k, &i)| (i, k)).collect();
    order
        .iter()
        .map(|&i| Draft {
            nodes: drafts[i].nodes.clone(),
            deps: drafts[i].deps.iter().map(|d| renumber[d]).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Strategy;
    use ysmart_plan::{analyze, build_plan, Catalog};
    use ysmart_rel::{DataType, Schema};
    use ysmart_sql::parse;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "clicks",
            Schema::of(
                "clicks",
                &[
                    ("uid", DataType::Int),
                    ("page_id", DataType::Int),
                    ("cid", DataType::Int),
                    ("ts", DataType::Int),
                ],
            ),
        );
        c.add_table(
            "lineitem",
            Schema::of(
                "lineitem",
                &[
                    ("l_orderkey", DataType::Int),
                    ("l_partkey", DataType::Int),
                    ("l_suppkey", DataType::Int),
                    ("l_quantity", DataType::Float),
                    ("l_extendedprice", DataType::Float),
                    ("l_receiptdate", DataType::Int),
                    ("l_commitdate", DataType::Int),
                ],
            ),
        );
        c.add_table(
            "part",
            Schema::of(
                "part",
                &[("p_partkey", DataType::Int), ("p_name", DataType::Str)],
            ),
        );
        c.add_table(
            "orders",
            Schema::of(
                "orders",
                &[
                    ("o_orderkey", DataType::Int),
                    ("o_orderstatus", DataType::Str),
                ],
            ),
        );
        c
    }

    fn drafts_for(sql: &str, strategy: Strategy) -> Vec<Draft> {
        let plan = build_plan(&catalog(), &parse(sql).unwrap()).unwrap();
        let report = analyze(&plan);
        build_drafts(&plan, &report, &strategy.options())
    }

    const Q17: &str = "SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
        FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1
              FROM lineitem GROUP BY l_partkey) AS inner_t,
             (SELECT l_partkey, l_quantity, l_extendedprice
              FROM lineitem, part
              WHERE p_partkey = l_partkey) AS outer_t
        WHERE outer_t.l_partkey = inner_t.l_partkey
          AND outer_t.l_quantity < inner_t.t1";

    /// §VII-A: Hive runs Q17 as four jobs; YSmart runs the JOIN2 subtree as
    /// one job plus the final aggregation — two in total.
    #[test]
    fn q17_job_counts_match_paper() {
        assert_eq!(drafts_for(Q17, Strategy::Hive).len(), 4);
        assert_eq!(drafts_for(Q17, Strategy::YSmart).len(), 2);
        // Rule 1 only: AGG1+JOIN1 share a job; JOIN2 and AGG2 stay separate.
        assert_eq!(drafts_for(Q17, Strategy::YSmartNoJfc).len(), 3);
    }

    /// §VII-A: Q-CSA is six jobs under Hive and two under YSmart.
    #[test]
    fn q_csa_job_counts_match_paper() {
        let q_csa = "SELECT avg(pageview_count) FROM
            (SELECT c.uid, mp.ts1, (count(*)-2) AS pageview_count
             FROM clicks AS c,
                  (SELECT uid, max(ts1) AS ts1, ts2
                   FROM (SELECT c1.uid, c1.ts AS ts1, min(c2.ts) AS ts2
                         FROM clicks AS c1, clicks AS c2
                         WHERE c1.uid = c2.uid AND c1.ts < c2.ts
                           AND c1.cid = 1 AND c2.cid = 2
                         GROUP BY c1.uid, c1.ts) AS cp
                   GROUP BY uid, ts2) AS mp
             WHERE c.uid = mp.uid AND c.ts >= mp.ts1 AND c.ts <= mp.ts2
             GROUP BY c.uid, mp.ts1) AS pageview_counts";
        assert_eq!(drafts_for(q_csa, Strategy::Hive).len(), 6);
        let ys = drafts_for(q_csa, Strategy::YSmart);
        assert_eq!(ys.len(), 2, "{ys:?}");
        // The big job executes five operations (JOIN1, AGG1, AGG2, JOIN2,
        // AGG3); the second job is the final AGG4.
        assert_eq!(ys[0].nodes.len(), 5);
        assert_eq!(ys[1].nodes.len(), 1);
    }

    /// Q18's three same-PK operations (JOIN1, AGG1, JOIN2) fuse into one
    /// job (§VII-A).
    #[test]
    fn q18_three_op_job() {
        let q18 = "SELECT o_orderkey, sum(l_quantity)
            FROM (SELECT l_orderkey, sum(l_quantity) AS t_sum_quantity
                  FROM lineitem GROUP BY l_orderkey) AS t,
                 lineitem, orders
            WHERE o_orderkey = t.l_orderkey AND o_orderkey = lineitem.l_orderkey
              AND t.t_sum_quantity > 300
            GROUP BY o_orderkey";
        let hive = drafts_for(q18, Strategy::Hive);
        let ys = drafts_for(q18, Strategy::YSmart);
        assert!(hive.len() > ys.len());
        assert_eq!(ys.len(), 1, "{ys:?}");
        // All four same-key operations (AGG1, JOIN1, JOIN2, AGG-final on
        // o_orderkey) run in a single job here, since even the final
        // aggregation groups by the shared key.
        assert_eq!(ys[0].nodes.len(), 4);
    }

    /// Dependencies are topologically ordered and intra-list indices valid.
    #[test]
    fn drafts_topologically_ordered() {
        for strategy in Strategy::all() {
            let ds = drafts_for(Q17, strategy);
            for (i, d) in ds.iter().enumerate() {
                for &dep in &d.deps {
                    assert!(
                        dep < i,
                        "draft {i} depends on later draft {dep} ({strategy})"
                    );
                }
            }
        }
    }

    /// With every option off (Hive/Pig), each shuffle node is its own job —
    /// the literal one-operation-to-one-job translation.
    #[test]
    fn one_op_one_job_baseline() {
        let ds = drafts_for(Q17, Strategy::Pig);
        assert!(ds.iter().all(|d| d.nodes.len() == 1));
    }
}
