//! # ysmart-core — correlation-aware SQL-to-MapReduce translation
//!
//! The paper's primary contribution: given a logical plan and its
//! correlation report, generate the **minimal number of MapReduce jobs** by
//! applying the four merging rules of §V-B:
//!
//! * **Rule 1** — jobs with *input correlation* and *transit correlation*
//!   merge into a common job (shared table scan, shared map output);
//! * **Rule 2** — an AGGREGATION job with *job flow correlation* to its only
//!   preceding job is evaluated in that job's reduce phase;
//! * **Rule 3** — a JOIN job whose two preceding jobs were Rule-1-merged is
//!   evaluated in the common job's reduce phase;
//! * **Rule 4** — a JOIN job with JFC to one preceding job merges into it,
//!   with the other preceding job scheduled first (the "child exchange" of
//!   Fig. 7).
//!
//! [`translate`] drives the whole pipeline (drafts → merging → blueprint
//! compilation); [`YSmart`] is the end-to-end engine (catalog + simulated
//! cluster + SQL in, result rows + per-job metrics out). Five
//! [`Strategy`] presets reproduce the systems the paper compares:
//! `Hive` and `Pig` (one-operation-to-one-job), `YSmartNoJfc` (Rule 1
//! only — the middle bar of Fig. 9), `YSmart` (all rules) and `HandCoded`
//! (YSmart plus reduce-side short-circuiting, §VII-C case 4).

pub mod compile;
pub mod draft;
pub mod engine;
pub mod error;
pub mod options;

pub use compile::{compile, compile_batch, BatchTranslation, QueryOutputLoc, Translation};
pub use draft::{build_drafts, Draft};
pub use engine::{BatchOutcome, QueryOutcome, YSmart};
pub use error::CoreError;
pub use options::{FaultOptions, Strategy, TranslateOptions};

use ysmart_plan::{analyze, build_plan, Catalog, Plan};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Parses, plans and translates a query in one call.
///
/// # Examples
///
/// ```
/// use ysmart_core::{translate, Strategy};
/// use ysmart_plan::Catalog;
/// use ysmart_rel::{DataType, Schema};
///
/// let mut catalog = Catalog::new();
/// catalog.add_table("t", Schema::of("t", &[
///     ("k", DataType::Int), ("v", DataType::Int),
/// ]));
/// // A self-join plus same-key aggregation: one YSmart job, two for Hive.
/// let sql = "SELECT a.k, count(*) FROM t AS a, t AS b \
///            WHERE a.k = b.k GROUP BY a.k";
/// let ys = translate(&catalog, sql, Strategy::YSmart, "doc").unwrap();
/// let hive = translate(&catalog, sql, Strategy::Hive, "doc").unwrap();
/// assert_eq!(ys.job_count(), 1);
/// assert_eq!(hive.job_count(), 2);
/// ```
///
/// # Errors
///
/// Parse, planning or compilation failures.
pub fn translate(
    catalog: &Catalog,
    sql: &str,
    strategy: Strategy,
    query_tag: &str,
) -> Result<Translation> {
    let query = ysmart_sql::parse(sql)?;
    let plan = build_plan(catalog, &query)?;
    translate_plan(&plan, strategy, query_tag)
}

/// Translates an already-built plan.
///
/// # Errors
///
/// Compilation failures.
pub fn translate_plan(plan: &Plan, strategy: Strategy, query_tag: &str) -> Result<Translation> {
    let report = analyze(plan);
    let opts = strategy.options();
    compile(plan, &report, &opts, query_tag)
}
