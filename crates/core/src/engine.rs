//! The end-to-end YSmart engine.
//!
//! [`YSmart`] owns a catalog and a simulated cluster. `execute_sql` runs
//! the full pipeline — parse → plan → correlation analysis → job merging →
//! blueprint compilation → MapReduce execution — and returns decoded result
//! rows together with per-job metrics (the raw material of every figure in
//! §VII).

use ysmart_mapred::metrics::ChainMetrics;
use ysmart_mapred::{run_chain, Cluster, ClusterConfig, JobChain};
use ysmart_plan::{analyze_with_stats, build_batch_plan, build_plan, Catalog, Plan, Statistics};
use ysmart_rel::codec::decode_line;
use ysmart_rel::colbatch::decode_frames;
use ysmart_rel::{ColumnBatch, Row, Schema};

use crate::compile::{compile, compile_batch, BatchTranslation, Translation};
use crate::error::CoreError;
use crate::options::Strategy;

/// Everything a query execution produced.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Decoded result rows (in job-output order; sorted queries are
    /// globally ordered because sort jobs use a single reducer).
    pub rows: Vec<Row>,
    /// The result schema.
    pub schema: Schema,
    /// Per-job execution metrics in chain order.
    pub metrics: ChainMetrics,
    /// Number of MapReduce jobs executed.
    pub jobs: usize,
}

impl QueryOutcome {
    /// Total simulated execution time in seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.metrics.total_s()
    }
}

/// Results of a multi-query batch execution.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-member `(rows, schema)`, in input order.
    pub queries: Vec<(Vec<Row>, Schema)>,
    /// Metrics of the shared job chain.
    pub metrics: ChainMetrics,
    /// Number of jobs the whole batch used.
    pub jobs: usize,
}

/// The translator + simulated cluster, bundled.
#[derive(Debug)]
pub struct YSmart {
    catalog: Catalog,
    /// The simulated cluster (public: benches reconfigure it between runs).
    pub cluster: Cluster,
    stats: Statistics,
    query_seq: usize,
}

impl YSmart {
    /// Creates an engine over a catalog and a cluster configuration.
    #[must_use]
    pub fn new(catalog: Catalog, config: ClusterConfig) -> Self {
        YSmart {
            catalog,
            cluster: Cluster::new(config),
            stats: Statistics::new(),
            query_seq: 0,
        }
    }

    /// The engine's catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Turns on structured execution tracing: every job executed from here
    /// on records spans (task attempts, shuffle fetches, verification,
    /// recovery waits) into a [`ysmart_mapred::Trace`]. Zero cost when off.
    pub fn enable_tracing(&mut self) {
        self.cluster.enable_tracing();
    }

    /// Takes the accumulated execution trace, if tracing was enabled —
    /// export it with [`ysmart_mapred::Trace::to_chrome_json`]. Tracing
    /// stays enabled with a fresh, empty trace.
    pub fn take_trace(&mut self) -> Option<ysmart_mapred::Trace> {
        let t = self.cluster.take_trace();
        if t.is_some() {
            self.cluster.enable_tracing();
        }
        t
    }

    /// Loads rows into HDFS under `data/<name>`. The table must exist in
    /// the catalog; rows are stored in the cluster's configured
    /// [`ysmart_mapred::DataFormat`] — pipe-delimited text lines, or
    /// columnar binary frames.
    ///
    /// # Errors
    ///
    /// Unknown table, or rows whose width disagrees with the schema.
    pub fn load_table(&mut self, name: &str, rows: &[Row]) -> Result<(), CoreError> {
        let schema = self.catalog.table(name)?.clone();
        for r in rows {
            if r.len() != schema.len() {
                return Err(CoreError::Translate(format!(
                    "row width {} does not match table `{name}` ({} columns)",
                    r.len(),
                    schema.len()
                )));
            }
        }
        // Table statistics feed the cost-informed PK tie-break and the
        // reduce-task cardinality caps.
        let columns: Vec<String> = schema.fields().iter().map(|f| f.name.clone()).collect();
        self.stats
            .add_table(name, Statistics::scan_table(&columns, rows));
        self.cluster.load_table_rows(name, rows);
        Ok(())
    }

    /// Loads pre-encoded lines into HDFS under `data/<name>`. When the
    /// table is in the catalog, statistics are gathered from the decoded
    /// rows; undecodable lines simply skip statistics (execution will
    /// surface the error).
    pub fn load_table_lines(&mut self, name: &str, lines: Vec<String>) {
        if let Ok(schema) = self.catalog.table(name) {
            let rows: Option<Vec<ysmart_rel::Row>> =
                lines.iter().map(|l| decode_line(l, schema).ok()).collect();
            if let Some(rows) = rows {
                let columns: Vec<String> = schema.fields().iter().map(|f| f.name.clone()).collect();
                self.stats
                    .add_table(name, Statistics::scan_table(&columns, &rows));
            }
        }
        self.cluster.load_table(name, lines);
    }

    /// The statistics gathered from loaded tables.
    #[must_use]
    pub fn statistics(&self) -> &Statistics {
        &self.stats
    }

    /// Parses and plans a query without executing it.
    ///
    /// # Errors
    ///
    /// Parse or planning failures.
    pub fn plan(&self, sql: &str) -> Result<Plan, CoreError> {
        let query = ysmart_sql::parse(sql)?;
        Ok(build_plan(&self.catalog, &query)?)
    }

    /// Translates a query into a job pipeline under `strategy`.
    ///
    /// # Errors
    ///
    /// Parse, planning or compilation failures.
    pub fn translate(&mut self, sql: &str, strategy: Strategy) -> Result<Translation, CoreError> {
        self.query_seq += 1;
        let tag = format!("q{}-{}", self.query_seq, strategy);
        self.translate_tagged(sql, strategy, &tag)
    }

    /// Translates a query under a caller-chosen `tag`, which namespaces
    /// every intermediate and output HDFS path of the compiled jobs. The
    /// multi-tenant workload bench uses per-request tags so hundreds of
    /// instances of the same query co-exist in one cluster without
    /// clobbering each other's outputs.
    ///
    /// # Errors
    ///
    /// Parse, planning or compilation failures.
    pub fn translate_tagged(
        &mut self,
        sql: &str,
        strategy: Strategy,
        tag: &str,
    ) -> Result<Translation, CoreError> {
        let plan = self.plan(sql)?;
        let report = analyze_with_stats(&plan, Some(&self.stats));
        compile(&plan, &report, &strategy.options(), tag)
    }

    /// Builds the executable [`JobChain`] of a compiled translation without
    /// running it — for callers that schedule chains themselves (the
    /// multi-tenant scheduler) rather than going through
    /// [`YSmart::execute_translation`].
    ///
    /// Each job also gets its cross-query *reuse fingerprint* when one can
    /// be soundly computed: the blueprint's structural fingerprint (operator
    /// tree, schemas, expressions — names and paths excluded) chained with
    /// the identity of every input, where an intermediate produced by an
    /// earlier job of this same translation contributes its producer's
    /// fingerprint and a loaded base table contributes the content checksum
    /// of its current bytes in HDFS. Inputs that are neither — a `tmp/` path
    /// from outside this translation, or a table not yet loaded — opt the
    /// job (and transitively its consumers) out with `fingerprint: None`,
    /// because binding a fingerprint to bytes the job will not actually read
    /// would poison the reuse cache.
    ///
    /// # Errors
    ///
    /// Blueprint-to-jobspec materialisation failures.
    pub fn chain_for(&self, translation: &Translation) -> Result<JobChain, CoreError> {
        let mut chain = JobChain::new();
        let mut produced: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for bp in &translation.blueprints {
            let mut spec = bp.to_jobspec()?;
            if let Some(fp) = self.job_fingerprint(bp, &produced) {
                produced.insert(bp.output.as_str(), fp);
                spec.fingerprint = Some(fp);
            }
            chain.push(spec);
        }
        Ok(chain)
    }

    /// The full reuse fingerprint of one blueprint, or `None` when any
    /// input's identity cannot be established (see [`YSmart::chain_for`]).
    /// The data format is mixed in because it changes the output bytes a
    /// cache hit would restore.
    fn job_fingerprint(
        &self,
        bp: &ysmart_exec::JobBlueprint,
        produced: &std::collections::BTreeMap<&str, u64>,
    ) -> Option<u64> {
        const MIX: u64 = 0x9E37_79B9_7F4A_7C15;
        let format = format!("{:?}", self.cluster.config.data_format);
        let mut fp =
            bp.structural_fingerprint() ^ ysmart_mapred::hash::checksum_bytes(format.as_bytes());
        for input in &bp.inputs {
            let id = if let Some(&producer) = produced.get(input.path.as_str()) {
                producer
            } else if input.path.starts_with("data/") {
                ysmart_mapred::file_checksum(self.cluster.hdfs.get(&input.path).ok()?)
            } else {
                return None;
            };
            fp = fp.wrapping_mul(MIX) ^ id;
        }
        Some(fp)
    }

    /// Decodes a translation's output rows from HDFS — the read-back half
    /// of [`YSmart::execute_translation`], usable after a chain ran through
    /// any path (including the multi-tenant scheduler).
    ///
    /// # Errors
    ///
    /// Missing output file (the chain did not complete) or undecodable
    /// lines.
    pub fn decode_output(&self, translation: &Translation) -> Result<Vec<Row>, CoreError> {
        let file = self.cluster.hdfs.get(&translation.output_path)?;
        if file.is_columnar() {
            return Ok(decode_frames(&file.frames)?);
        }
        let mut rows = Vec::with_capacity(file.lines.len());
        for line in &file.lines {
            rows.push(decode_line(line, &translation.output_schema)?);
        }
        Ok(rows)
    }

    /// Translates and executes a query, returning rows and metrics.
    ///
    /// # Errors
    ///
    /// Any pipeline failure, including simulated cluster failures (disk
    /// full, time limit) — check [`CoreError::is_disk_full`] /
    /// [`CoreError::is_time_limit`] for the paper's DNF cases.
    pub fn execute_sql(
        &mut self,
        sql: &str,
        strategy: Strategy,
    ) -> Result<QueryOutcome, CoreError> {
        let translation = self.translate(sql, strategy)?;
        self.execute_translation(&translation)
    }

    /// Translates and executes several queries as one *batch*: Rule 1
    /// applies across queries, so members scanning the same tables with the
    /// same partition keys share jobs and scans (the multi-query sharing
    /// the paper's related-work section attributes to MRShare, expressed
    /// with YSmart's own correlation machinery).
    ///
    /// # Errors
    ///
    /// Any member's parse/planning failure, or cluster execution failures.
    pub fn execute_batch(
        &mut self,
        sqls: &[&str],
        strategy: Strategy,
    ) -> Result<BatchOutcome, CoreError> {
        self.query_seq += 1;
        let tag = format!("b{}-{}", self.query_seq, strategy);
        let queries: Vec<ysmart_sql::Query> = sqls
            .iter()
            .map(|s| ysmart_sql::parse(s))
            .collect::<Result<_, _>>()?;
        let refs: Vec<&ysmart_sql::Query> = queries.iter().collect();
        let (plan, roots) = build_batch_plan(&self.catalog, &refs)?;
        let report = analyze_with_stats(&plan, Some(&self.stats));
        let translation: BatchTranslation =
            compile_batch(&plan, &roots, &report, &strategy.options(), &tag)?;

        let mut chain = JobChain::new();
        for bp in &translation.blueprints {
            chain.push(bp.to_jobspec()?);
        }
        let outcome =
            run_chain(&mut self.cluster, &chain).map_err(ysmart_mapred::MapRedError::from)?;
        let mut queries_out = Vec::with_capacity(translation.outputs.len());
        for loc in &translation.outputs {
            let file = self.cluster.hdfs.get(&loc.path)?;
            let mut rows = Vec::new();
            if file.is_columnar() {
                // A tagged multi-output file carries the stream tag as a
                // leading Int column; keep this member's rows, drop the tag.
                for frame in &file.frames {
                    let batch = ColumnBatch::decode_frame(frame)?;
                    match loc.tag {
                        None => rows.extend(batch.to_rows()),
                        Some(want) => {
                            let mask: Vec<bool> = (0..batch.num_rows())
                                .map(|r| {
                                    batch
                                        .columns()
                                        .first()
                                        .is_some_and(|c| c.value(r).as_int() == Some(want))
                                })
                                .collect();
                            rows.extend(batch.filter(&mask).slice_cols(1).to_rows());
                        }
                    }
                }
            } else {
                for line in &file.lines {
                    let payload = match loc.tag {
                        None => line.as_str(),
                        Some(want) => match line.split_once('|') {
                            Some((tag, rest)) if tag.parse::<i64>() == Ok(want) => rest,
                            _ => continue,
                        },
                    };
                    rows.push(decode_line(payload, &loc.schema)?);
                }
            }
            queries_out.push((rows, loc.schema.clone()));
        }
        Ok(BatchOutcome {
            queries: queries_out,
            jobs: outcome.metrics.jobs.len(),
            metrics: outcome.metrics,
        })
    }

    /// Executes an already-compiled translation.
    ///
    /// # Errors
    ///
    /// Cluster execution failures.
    pub fn execute_translation(
        &mut self,
        translation: &Translation,
    ) -> Result<QueryOutcome, CoreError> {
        let chain = self.chain_for(translation)?;
        let outcome =
            run_chain(&mut self.cluster, &chain).map_err(ysmart_mapred::MapRedError::from)?;
        // Decode straight off the in-HDFS lines — no clone of the output.
        let rows = self.decode_output(translation)?;
        Ok(QueryOutcome {
            rows,
            schema: translation.output_schema.clone(),
            jobs: outcome.metrics.jobs.len(),
            metrics: outcome.metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Strategy;
    use ysmart_rel::{row, DataType, Value};

    fn engine() -> YSmart {
        let mut catalog = Catalog::new();
        catalog.add_table(
            "clicks",
            Schema::of(
                "clicks",
                &[
                    ("uid", DataType::Int),
                    ("page_id", DataType::Int),
                    ("cid", DataType::Int),
                    ("ts", DataType::Int),
                ],
            ),
        );
        let mut e = YSmart::new(catalog, ClusterConfig::default());
        let mut rows = Vec::new();
        // 3 users × 20 clicks; categories cycle 0..5.
        for uid in 0..3i64 {
            for i in 0..20i64 {
                rows.push(row![uid, i, i % 5, uid * 1000 + i]);
            }
        }
        e.load_table("clicks", &rows).unwrap();
        e
    }

    fn sorted(rows: &[Row]) -> Vec<Row> {
        let mut v = rows.to_vec();
        v.sort();
        v
    }

    #[test]
    fn simple_aggregation_all_strategies_agree() {
        let sql = "SELECT cid, count(*) FROM clicks GROUP BY cid";
        let mut reference: Option<Vec<Row>> = None;
        for strategy in Strategy::all() {
            let mut e = engine();
            let out = e.execute_sql(sql, strategy).unwrap();
            assert_eq!(out.rows.len(), 5, "{strategy}");
            match &reference {
                None => reference = Some(sorted(&out.rows)),
                Some(r) => assert_eq!(&sorted(&out.rows), r, "{strategy}"),
            }
        }
    }

    #[test]
    fn selection_projection_map_only() {
        let mut e = engine();
        let out = e
            .execute_sql("SELECT uid, ts FROM clicks WHERE cid = 0", Strategy::YSmart)
            .unwrap();
        assert_eq!(out.jobs, 1);
        assert_eq!(out.rows.len(), 3 * 4); // i % 5 == 0 for 4 of 20 per user
        assert!(out.metrics.jobs[0].reduce_time_s == 0.0, "map-only");
    }

    #[test]
    fn self_join_agg_merges_and_matches_hive() {
        let sql = "SELECT c1.uid, count(*) FROM clicks AS c1, clicks AS c2 \
                   WHERE c1.uid = c2.uid AND c1.cid = 1 AND c2.cid = 2 GROUP BY c1.uid";
        let mut e1 = engine();
        let ys = e1.execute_sql(sql, Strategy::YSmart).unwrap();
        let mut e2 = engine();
        let hive = e2.execute_sql(sql, Strategy::Hive).unwrap();
        assert_eq!(sorted(&ys.rows), sorted(&hive.rows));
        assert!(ys.jobs < hive.jobs, "{} vs {}", ys.jobs, hive.jobs);
        // YSmart reads the clicks table once; Hive reads it twice for the
        // self-join plus once more for the aggregation input.
        assert!(ys.metrics.total_hdfs_read() < hive.metrics.total_hdfs_read());
    }

    #[test]
    fn order_by_limit_returns_global_order() {
        let mut e = engine();
        let out = e
            .execute_sql(
                "SELECT uid, ts FROM clicks ORDER BY ts DESC LIMIT 4",
                Strategy::YSmart,
            )
            .unwrap();
        assert_eq!(out.rows.len(), 4);
        let ts: Vec<i64> = out
            .rows
            .iter()
            .map(|r| r.get(1).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(ts, vec![2019, 2018, 2017, 2016]);
    }

    #[test]
    fn distinct_deduplicates() {
        let mut e = engine();
        let out = e
            .execute_sql("SELECT DISTINCT cid FROM clicks", Strategy::YSmart)
            .unwrap();
        assert_eq!(out.rows.len(), 5);
    }

    #[test]
    fn having_filters() {
        let mut e = engine();
        let out = e
            .execute_sql(
                "SELECT uid, count(*) AS n FROM clicks GROUP BY uid HAVING n > 100",
                Strategy::YSmart,
            )
            .unwrap();
        assert!(out.rows.is_empty());
    }

    #[test]
    fn row_width_mismatch_rejected() {
        let mut e = engine();
        let err = e.load_table("clicks", &[row![1i64]]).unwrap_err();
        assert!(matches!(err, CoreError::Translate(_)));
    }

    #[test]
    fn left_outer_join_with_is_null() {
        let mut e = engine();
        // users with cid=1 clicks but no cid=99 clicks: everyone.
        let sql = "SELECT c1.uid FROM clicks AS c1 LEFT OUTER JOIN \
                   (SELECT uid, count(*) AS n FROM clicks WHERE cid = 99 GROUP BY uid) AS x \
                   ON c1.uid = x.uid WHERE x.n IS NULL AND c1.cid = 1";
        let out = e.execute_sql(sql, Strategy::YSmart).unwrap();
        assert_eq!(out.rows.len(), 3 * 4);
        let mut e2 = engine();
        let hive = e2.execute_sql(sql, Strategy::Hive).unwrap();
        assert_eq!(sorted(&out.rows), sorted(&hive.rows));
    }

    fn engine_columnar() -> YSmart {
        let mut catalog = Catalog::new();
        catalog.add_table(
            "clicks",
            Schema::of(
                "clicks",
                &[
                    ("uid", DataType::Int),
                    ("page_id", DataType::Int),
                    ("cid", DataType::Int),
                    ("ts", DataType::Int),
                ],
            ),
        );
        let config = ClusterConfig {
            data_format: ysmart_mapred::DataFormat::Columnar,
            ..ClusterConfig::default()
        };
        let mut e = YSmart::new(catalog, config);
        let mut rows = Vec::new();
        for uid in 0..3i64 {
            for i in 0..20i64 {
                rows.push(row![uid, i, i % 5, uid * 1000 + i]);
            }
        }
        e.load_table("clicks", &rows).unwrap();
        e
    }

    #[test]
    fn columnar_format_matches_text_results() {
        for sql in [
            "SELECT cid, count(*) FROM clicks GROUP BY cid",
            "SELECT uid, ts FROM clicks WHERE cid = 0",
            "SELECT c1.uid, count(*) FROM clicks AS c1, clicks AS c2 \
             WHERE c1.uid = c2.uid AND c1.cid = 1 AND c2.cid = 2 GROUP BY c1.uid",
            "SELECT uid, ts FROM clicks ORDER BY ts DESC LIMIT 4",
        ] {
            let text = engine().execute_sql(sql, Strategy::YSmart).unwrap();
            let col = engine_columnar()
                .execute_sql(sql, Strategy::YSmart)
                .unwrap();
            assert_eq!(sorted(&text.rows), sorted(&col.rows), "{sql}");
            assert!(
                col.metrics.jobs.iter().any(|j| j.encoded_bytes > 0),
                "columnar run must account encoded frame bytes: {sql}"
            );
            assert_eq!(
                text.metrics
                    .jobs
                    .iter()
                    .map(|j| j.encoded_bytes)
                    .sum::<u64>(),
                0,
                "text run must not report encoded bytes: {sql}"
            );
        }
    }

    #[test]
    fn columnar_batch_decodes_tagged_outputs() {
        let sqls = [
            "SELECT cid, count(*) FROM clicks GROUP BY cid",
            "SELECT cid, count(*) FROM clicks WHERE uid = 1 GROUP BY cid",
        ];
        let text = engine().execute_batch(&sqls, Strategy::YSmart).unwrap();
        let col = engine_columnar()
            .execute_batch(&sqls, Strategy::YSmart)
            .unwrap();
        assert_eq!(text.queries.len(), col.queries.len());
        for (t, c) in text.queries.iter().zip(&col.queries) {
            assert_eq!(sorted(&t.0), sorted(&c.0));
        }
    }

    #[test]
    fn chain_fingerprints_stable_across_tags_and_sensitive_to_data() {
        let sql = "SELECT cid, count(*) FROM clicks GROUP BY cid";
        let mut e = engine();
        let t1 = e.translate_tagged(sql, Strategy::YSmart, "tag-a").unwrap();
        let t2 = e.translate_tagged(sql, Strategy::YSmart, "tag-b").unwrap();
        let fp = |t: &Translation, e: &YSmart| -> Vec<Option<u64>> {
            e.chain_for(t)
                .unwrap()
                .jobs
                .iter()
                .map(|j| j.fingerprint)
                .collect()
        };
        let f1 = fp(&t1, &e);
        assert!(
            f1.iter().all(Option::is_some),
            "every job over a loaded base table fingerprints"
        );
        assert_eq!(
            f1,
            fp(&t2, &e),
            "the submission tag must not change fingerprints"
        );
        // Different base-table contents → different fingerprints.
        e.load_table("clicks", &[row![9i64, 9, 9, 9]]).unwrap();
        assert_ne!(f1, fp(&t1, &e));
        // A query over a table that is not loaded opts out, not panics.
        let mut empty = YSmart::new(engine().catalog().clone(), ClusterConfig::default());
        let t3 = empty
            .translate_tagged(sql, Strategy::YSmart, "tag-c")
            .unwrap();
        assert!(fp(&t3, &empty).iter().all(Option::is_none));
    }

    #[test]
    fn global_avg_returns_float() {
        let mut e = engine();
        let out = e
            .execute_sql("SELECT avg(ts) FROM clicks", Strategy::YSmart)
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert!(matches!(out.rows[0].get(0).unwrap(), Value::Float(_)));
    }
}
