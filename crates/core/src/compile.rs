//! Compiles drafts into executable [`JobBlueprint`]s.
//!
//! Conventions:
//!
//! * **Interface rows.** The rows flowing between operators are exactly the
//!   plan schemas: an operator's input rows are its plan children's output
//!   rows. Pipe operators (`Filter`/`Project`/`Limit`) between a producer
//!   and its consumer are folded into the *producer*: into the scan-side
//!   predicate/projection when the producer is a base-table scan, into the
//!   producer op's output transforms otherwise. A job therefore publishes
//!   rows in the schema its consumer's plan child has.
//! * **Shuffle keys.** Each input's key expressions evaluate the consuming
//!   operator's partition key on that input's rows: join-side keys for
//!   joins, the chosen PK subset of the grouping columns for aggregations,
//!   empty (single reducer) for sorts and global aggregations.
//! * **Equi-keys re-checked.** Join ops re-verify key equality as part of
//!   the residual. Within a reduce group keys are equal by construction,
//!   *except* for SQL NULLs: hash partitioning co-locates NULL keys but SQL
//!   says `NULL = NULL` is unknown, so the explicit check also gives outer
//!   joins their correct NULL-key behaviour.
//! * **Multi-output jobs.** A Rule-1-merged job whose operations are *not*
//!   consumed in-job (no JFC) publishes all their outputs into one file,
//!   each line tagged with its operation index; consumers filter by tag
//!   (§VI-B).

use std::collections::{BTreeSet, HashMap};

use ysmart_exec::{
    EmitSpec, InputSpec, JobBlueprint, MapBranch, OpKind, PartialAgg, ROp, RSource, RowOp,
    StreamSpec,
};
use ysmart_plan::{CorrelationReport, NodeId, Operator, Plan};
use ysmart_rel::{BinOp, Expr, Schema};

use crate::draft::{build_drafts, Draft};
use crate::error::CoreError;
use crate::options::TranslateOptions;

/// The result of translating one query.
#[derive(Debug)]
pub struct Translation {
    /// The jobs, in execution order.
    pub blueprints: Vec<JobBlueprint>,
    /// HDFS path of the final result.
    pub output_path: String,
    /// Schema of the final result rows.
    pub output_schema: Schema,
}

impl Translation {
    /// Number of MapReduce jobs — the quantity YSmart minimises.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.blueprints.len()
    }

    /// Renders the job pipeline as an `EXPLAIN`-style text description:
    /// per job its inputs (with selections and shared-scan branches), the
    /// reduce-side operator DAG (merged reducers and post-job
    /// computations), and what it publishes.
    #[must_use]
    pub fn explain(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, bp) in self.blueprints.iter().enumerate() {
            let _ = writeln!(out, "Job {}/{}: {}", i + 1, self.blueprints.len(), bp.name);
            for input in &bp.inputs {
                let tag = input
                    .tag_filter
                    .map(|t| format!(" [tag {t}]"))
                    .unwrap_or_default();
                let keys: Vec<String> = input.key_exprs.iter().map(ToString::to_string).collect();
                let _ = writeln!(
                    out,
                    "  scan {}{} key=({})",
                    input.path,
                    tag,
                    keys.join(", ")
                );
                for b in &input.branches {
                    match &b.predicate {
                        Some(p) => {
                            let _ = writeln!(out, "    -> stream {} where {p}", b.stream);
                        }
                        None => {
                            let _ = writeln!(out, "    -> stream {}", b.stream);
                        }
                    }
                }
            }
            if bp.map_only {
                let _ = writeln!(out, "  map-only (SELECTION-PROJECTION)");
            }
            for (k, op) in bp.ops.iter().enumerate() {
                let srcs: Vec<String> = op
                    .inputs
                    .iter()
                    .map(|s| match s {
                        RSource::Stream(i) => format!("stream {i}"),
                        RSource::Op(i) => format!("op {i}"),
                    })
                    .collect();
                let kind = match &op.kind {
                    OpKind::Join { kind, .. } => format!("{kind}"),
                    OpKind::Agg {
                        group_cols, aggs, ..
                    } => format!("AGGREGATE by {group_cols:?} ({} aggs)", aggs.len()),
                    OpKind::Pass => "PASS".to_string(),
                };
                let post = if op.inputs.iter().any(|s| matches!(s, RSource::Op(_))) {
                    " (post-job computation)"
                } else {
                    ""
                };
                let _ = writeln!(out, "  op {k}: {kind} <- {}{post}", srcs.join(", "));
                for tr in &op.transforms {
                    let name = match tr {
                        RowOp::Filter(p) => format!("filter {p}"),
                        RowOp::Project(es) => format!("project {} cols", es.len()),
                        RowOp::Sort(ks) => format!("sort {} keys", ks.len()),
                        RowOp::Limit(n) => format!("limit {n}"),
                    };
                    let _ = writeln!(out, "       | {name}");
                }
            }
            let emit = match &bp.emit {
                EmitSpec::Single(RSource::Op(i)) => format!("op {i}"),
                EmitSpec::Single(RSource::Stream(i)) => format!("stream {i}"),
                EmitSpec::Tagged(srcs) => format!("{} tagged sources", srcs.len()),
            };
            let _ = writeln!(out, "  emit {emit} -> {}", bp.output);
            if bp.combiner.is_some() {
                let _ = writeln!(out, "  with map-side combiner");
            }
        }
        out
    }
}

/// What a producer published for its consumers.
#[derive(Debug, Clone)]
struct Published {
    path: String,
    tag: Option<i64>,
    schema: Schema,
}

/// Where a consumer's child chain ends.
enum ChainEnd {
    Scan {
        scan: NodeId,
        predicate: Option<Expr>,
        /// Interface row expressed over the base schema.
        interface: Vec<Expr>,
    },
    Shuffle {
        node: NodeId,
        /// Pipe transforms between the producer and this consumer,
        /// bottom-up (to append to the producer's op).
        transforms: Vec<RowOp>,
    },
}

/// Compiles a plan + correlation report into a job pipeline.
///
/// # Errors
///
/// Unsupported shapes (e.g. `LIMIT` on a parallel-reduce job) and internal
/// blueprint validation failures.
pub fn compile(
    plan: &Plan,
    report: &CorrelationReport,
    opts: &TranslateOptions,
    query_tag: &str,
) -> Result<Translation, CoreError> {
    let root_schema = plan.node(plan.root()).schema.clone();
    let output_path = format!("out/{query_tag}");

    // A plan with no shuffle node is a pure SELECTION-PROJECTION query:
    // one map-only job (§V-A).
    if report.nodes.is_empty() {
        let bp = compile_map_only(plan, plan.root(), opts, &output_path)?;
        return Ok(Translation {
            blueprints: vec![bp],
            output_path,
            output_schema: root_schema,
        });
    }

    let drafts = build_drafts(plan, report, opts);
    let parents = plan.parents();
    let mut published: HashMap<NodeId, Published> = HashMap::new();
    let mut blueprints = Vec::with_capacity(drafts.len());
    let last = drafts.len() - 1;
    for (i, draft) in drafts.iter().enumerate() {
        let out_path = if i == last {
            output_path.clone()
        } else {
            format!("tmp/{query_tag}/job{}", i + 1)
        };
        let bp = compile_draft(
            plan,
            report,
            opts,
            draft,
            i + 1,
            &parents,
            &mut published,
            &out_path,
        )?;
        bp.validate().map_err(CoreError::Exec)?;
        blueprints.push(bp);
    }
    Ok(Translation {
        blueprints,
        output_path,
        output_schema: root_schema,
    })
}

/// Where one batch member's result lives after a multi-query run.
#[derive(Debug, Clone)]
pub struct QueryOutputLoc {
    /// HDFS path of the file holding (at least) this query's rows.
    pub path: String,
    /// When the file is a tagged multi-output, this query's line tag.
    pub tag: Option<i64>,
    /// Schema of the query's rows.
    pub schema: Schema,
}

/// The result of translating a multi-query batch.
#[derive(Debug)]
pub struct BatchTranslation {
    /// The shared job pipeline.
    pub blueprints: Vec<JobBlueprint>,
    /// Per-member output locations, in input order.
    pub outputs: Vec<QueryOutputLoc>,
}

/// Compiles a batch plan (built by [`ysmart_plan::build_batch_plan`]) into
/// one shared job pipeline. Rule 1 applies *across* queries: members that
/// scan the same table with the same partition key share one job (and one
/// scan); each member's rows are recovered from the published output of
/// its root operation.
///
/// # Errors
///
/// Same failure modes as [`compile`].
pub fn compile_batch(
    plan: &Plan,
    roots: &[NodeId],
    report: &CorrelationReport,
    opts: &TranslateOptions,
    query_tag: &str,
) -> Result<BatchTranslation, CoreError> {
    let drafts = build_drafts(plan, report, opts);
    let parents = plan.parents();
    let mut published: HashMap<NodeId, Published> = HashMap::new();
    let mut blueprints = Vec::with_capacity(drafts.len());
    for (i, draft) in drafts.iter().enumerate() {
        let out_path = format!("tmp/{query_tag}/job{}", i + 1);
        let bp = compile_draft(
            plan,
            report,
            opts,
            draft,
            i + 1,
            &parents,
            &mut published,
            &out_path,
        )?;
        bp.validate().map_err(CoreError::Exec)?;
        blueprints.push(bp);
    }
    let mut outputs = Vec::with_capacity(roots.len());
    for (qi, &root) in roots.iter().enumerate() {
        match resolve_chain(plan, root)? {
            ChainEnd::Shuffle { node, .. } => {
                let pb = published.get(&node).ok_or_else(|| {
                    CoreError::Translate(format!("batch member {qi} has no published output"))
                })?;
                outputs.push(QueryOutputLoc {
                    path: pb.path.clone(),
                    tag: pb.tag,
                    schema: pb.schema.clone(),
                });
            }
            ChainEnd::Scan { .. } => {
                // A shuffle-free member runs as its own map-only job.
                let out_path = format!("out/{query_tag}-m{qi}");
                let bp = compile_map_only(plan, root, opts, &out_path)?;
                blueprints.push(bp);
                outputs.push(QueryOutputLoc {
                    path: out_path,
                    tag: None,
                    schema: plan.node(root).schema.clone(),
                });
            }
        }
    }
    Ok(BatchTranslation {
        blueprints,
        outputs,
    })
}

/// Resolves the chain from a consumer's direct plan child down to its
/// producer, folding pipe operators.
fn resolve_chain(plan: &Plan, child: NodeId) -> Result<ChainEnd, CoreError> {
    // Walk down collecting pipes (top-down), then fold.
    let mut pipes_top_down: Vec<NodeId> = Vec::new();
    let mut cur = child;
    loop {
        let node = plan.node(cur);
        match &node.op {
            Operator::Scan { .. } => break,
            op if op.needs_shuffle() => break,
            _ => {
                pipes_top_down.push(cur);
                cur = node.children[0];
            }
        }
    }
    let node = plan.node(cur);
    if node.op.needs_shuffle() {
        // Fold pipes into RowOps, bottom-up.
        let mut transforms = Vec::new();
        for &p in pipes_top_down.iter().rev() {
            transforms.push(pipe_to_rowop(plan, p)?);
        }
        return Ok(ChainEnd::Shuffle {
            node: cur,
            transforms,
        });
    }
    // Scan chain: compose predicate + interface projection over the base.
    let Operator::Scan { predicate, .. } = &node.op else {
        unreachable!("chain ends at scan or shuffle");
    };
    let base_width = node.schema.len();
    let mut interface: Vec<Expr> = (0..base_width).map(Expr::Column).collect();
    let mut preds: Vec<Expr> = predicate.clone().into_iter().collect();
    for &p in pipes_top_down.iter().rev() {
        match &plan.node(p).op {
            Operator::Filter { predicate } => preds.push(predicate.substitute(&interface)),
            Operator::Project { exprs } => {
                interface = exprs.iter().map(|e| e.substitute(&interface)).collect();
            }
            Operator::Limit { .. } => {
                return Err(CoreError::Translate(
                    "LIMIT directly over a table scan is not supported".into(),
                ))
            }
            other => {
                return Err(CoreError::Translate(format!(
                    "unexpected pipe operator {}",
                    other.name()
                )))
            }
        }
    }
    Ok(ChainEnd::Scan {
        scan: cur,
        predicate: Expr::conjunction(preds),
        interface,
    })
}

fn pipe_to_rowop(plan: &Plan, pipe: NodeId) -> Result<RowOp, CoreError> {
    Ok(match &plan.node(pipe).op {
        Operator::Filter { predicate } => RowOp::Filter(predicate.clone()),
        Operator::Project { exprs } => RowOp::Project(exprs.clone()),
        Operator::Limit { n } => RowOp::Limit(*n as usize),
        other => {
            return Err(CoreError::Translate(format!(
                "unexpected pipe operator {}",
                other.name()
            )))
        }
    })
}

/// The pipe nodes above `node` up to (excluding) the next shuffle node,
/// bottom-up — they run as output transforms of `node`'s op.
fn pipes_above(plan: &Plan, parents: &[Option<NodeId>], node: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut cur = parents[node.0];
    while let Some(p) = cur {
        if plan.node(p).op.needs_shuffle() || matches!(plan.node(p).op, Operator::Batch) {
            break;
        }
        out.push(p);
        cur = parents[p.0];
    }
    out
}

/// The published interface schema of a producer: the schema of the topmost
/// pipe below its next shuffle ancestor (or the plan root).
fn published_schema(plan: &Plan, parents: &[Option<NodeId>], node: NodeId) -> Schema {
    let pipes = pipes_above(plan, parents, node);
    match pipes.last() {
        Some(&top) => plan.node(top).schema.clone(),
        None => plan.node(node).schema.clone(),
    }
}

/// The partition-key column indexes of `node` as seen on the rows of its
/// `child_pos`-th input (0 = left/only, 1 = right).
fn key_cols_for(
    plan: &Plan,
    report: &CorrelationReport,
    node: NodeId,
    child_pos: usize,
) -> Vec<usize> {
    match &plan.node(node).op {
        Operator::Join {
            left_keys,
            right_keys,
            ..
        } => {
            if child_pos == 0 {
                left_keys.clone()
            } else {
                right_keys.clone()
            }
        }
        Operator::Aggregate { group_by, .. } => {
            let info = report.info(node);
            if group_by.is_empty() {
                Vec::new()
            } else if info.pk_group_positions.is_empty() {
                group_by.clone()
            } else {
                info.pk_group_positions
                    .iter()
                    .map(|&p| group_by[p])
                    .collect()
            }
        }
        Operator::Distinct => (0..plan.node(plan.node(node).children[0]).schema.len()).collect(),
        // Sorts funnel everything to a single reducer.
        Operator::Sort { .. } => Vec::new(),
        _ => Vec::new(),
    }
}

/// Builds the reduce-side operator for a shuffle node. Sources are filled
/// by the caller.
fn build_op(plan: &Plan, node: NodeId, inputs: Vec<RSource>) -> ROp {
    match &plan.node(node).op {
        Operator::Join {
            kind,
            left_keys,
            right_keys,
            residual,
        } => {
            let left_width = plan.node(plan.node(node).children[0]).schema.len();
            let right_width = plan.node(plan.node(node).children[1]).schema.len();
            // Re-check key equality explicitly (NULL keys must not join).
            let mut conjuncts: Vec<Expr> = left_keys
                .iter()
                .zip(right_keys)
                .map(|(&l, &r)| Expr::binary(BinOp::Eq, Expr::col(l), Expr::col(left_width + r)))
                .collect();
            conjuncts.extend(residual.clone());
            ROp {
                kind: OpKind::Join {
                    kind: *kind,
                    residual: Expr::conjunction(conjuncts),
                    left_width,
                    right_width,
                },
                inputs,
                transforms: vec![],
            }
        }
        Operator::Aggregate {
            group_by,
            aggs,
            having,
        } => ROp {
            kind: OpKind::Agg {
                group_cols: group_by.clone(),
                aggs: aggs.iter().map(|a| (a.func, a.arg.clone())).collect(),
                having: having.clone(),
                merge_partials: false,
            },
            inputs,
            transforms: vec![],
        },
        Operator::Distinct => {
            let width = plan.node(plan.node(node).children[0]).schema.len();
            ROp {
                kind: OpKind::Agg {
                    group_cols: (0..width).collect(),
                    aggs: vec![],
                    having: None,
                    merge_partials: false,
                },
                inputs,
                transforms: vec![],
            }
        }
        Operator::Sort { keys } => ROp {
            kind: OpKind::Pass,
            inputs,
            transforms: vec![RowOp::Sort(keys.clone())],
        },
        other => unreachable!("not a shuffle op: {}", other.name()),
    }
}

/// An input being assembled: branches keep their interface expressions
/// until all branches are known, then the union value columns are fixed.
struct PendingInput {
    path: String,
    schema: Schema,
    key_exprs: Vec<Expr>,
    tag_filter: Option<i64>,
    branches: Vec<(usize, Option<Expr>, Vec<Expr>)>, // (stream, predicate, interface over base)
}

#[allow(clippy::too_many_arguments)]
fn compile_draft(
    plan: &Plan,
    report: &CorrelationReport,
    opts: &TranslateOptions,
    draft: &Draft,
    seq: usize,
    parents: &[Option<NodeId>],
    published: &mut HashMap<NodeId, Published>,
    out_path: &str,
) -> Result<JobBlueprint, CoreError> {
    let mut pending_inputs: Vec<PendingInput> = Vec::new();
    let mut streams: Vec<StreamSpec> = Vec::new(); // placeholder projections fixed later
    let mut stream_count = 0usize;
    let mut ops: Vec<ROp> = Vec::new();
    let mut op_index: HashMap<NodeId, usize> = HashMap::new();

    let in_draft: BTreeSet<NodeId> = draft.nodes.iter().copied().collect();

    for &node in &draft.nodes {
        let children = plan.node(node).children.clone();
        let mut sources: Vec<RSource> = Vec::new();
        for (child_pos, &child) in children.iter().enumerate() {
            let key_cols = key_cols_for(plan, report, node, child_pos);
            match resolve_chain(plan, child)? {
                ChainEnd::Shuffle {
                    node: producer,
                    transforms,
                } if in_draft.contains(&producer) => {
                    // In-job source: append the pipe transforms to the
                    // producer's op.
                    let idx = op_index[&producer];
                    ops[idx].transforms.extend(transforms);
                    sources.push(RSource::Op(idx));
                }
                ChainEnd::Shuffle { node: producer, .. } => {
                    // Cross-job source: read the producer's published file.
                    let pb = published.get(&producer).ok_or_else(|| {
                        CoreError::Translate(format!("producer {producer} has no published output"))
                    })?;
                    let width = pb.schema.len();
                    let interface: Vec<Expr> = (0..width).map(Expr::Column).collect();
                    let key_exprs: Vec<Expr> = key_cols.iter().map(|&k| Expr::col(k)).collect();
                    let stream = stream_count;
                    stream_count += 1;
                    streams.push(StreamSpec { projection: vec![] });
                    add_branch(
                        &mut pending_inputs,
                        &pb.path.clone(),
                        pb.schema.clone(),
                        key_exprs,
                        pb.tag,
                        stream,
                        None,
                        interface,
                        // Intermediate inputs are never shared between
                        // branches of different shapes; still dedupe when
                        // identical (e.g. the same subquery read twice).
                        true,
                    );
                    sources.push(RSource::Stream(stream));
                }
                ChainEnd::Scan {
                    scan,
                    predicate,
                    interface,
                } => {
                    let Operator::Scan { table, .. } = &plan.node(scan).op else {
                        unreachable!()
                    };
                    let schema = plan.node(scan).schema.clone();
                    let key_exprs: Vec<Expr> =
                        key_cols.iter().map(|&k| interface[k].clone()).collect();
                    let stream = stream_count;
                    stream_count += 1;
                    streams.push(StreamSpec { projection: vec![] });
                    add_branch(
                        &mut pending_inputs,
                        &ysmart_mapred::Cluster::table_path(table),
                        schema,
                        key_exprs,
                        None,
                        stream,
                        predicate,
                        interface,
                        opts.shared_scan,
                    );
                    sources.push(RSource::Stream(stream));
                }
            }
        }
        op_index.insert(node, ops.len());
        ops.push(build_op(plan, node, sources));
    }

    // ---- finalise inputs: union value columns, remap projections ----------
    let mut inputs: Vec<InputSpec> = Vec::new();
    for p in pending_inputs {
        let mut used: BTreeSet<usize> = BTreeSet::new();
        for (_, _, interface) in &p.branches {
            for e in interface {
                used.extend(e.referenced_columns());
            }
        }
        let value_cols: Vec<usize> = used.into_iter().collect();
        let pos_of: HashMap<usize, usize> = value_cols
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        let mut branches = Vec::new();
        for (stream, predicate, interface) in p.branches {
            let projection: Vec<Expr> = interface
                .iter()
                .map(|e| e.remap_columns(&|c| pos_of[&c]))
                .collect();
            streams[stream] = StreamSpec { projection };
            branches.push(MapBranch { stream, predicate });
        }
        inputs.push(InputSpec {
            path: p.path,
            schema: p.schema,
            key_exprs: p.key_exprs,
            value_cols,
            branches,
            tag_filter: p.tag_filter,
        });
    }

    // ---- roots, output transforms, emit ------------------------------------
    let roots: Vec<NodeId> = draft
        .nodes
        .iter()
        .copied()
        .filter(|&n| match parents[n.0] {
            None => true,
            Some(_) => {
                // A node is a root if no other node *in this draft* consumes
                // its output (directly or through pipes).
                let mut cur = parents[n.0];
                loop {
                    match cur {
                        None => break true,
                        Some(p) if plan.node(p).op.needs_shuffle() => break !in_draft.contains(&p),
                        Some(p) => cur = parents[p.0],
                    }
                }
            }
        })
        .collect();
    for &root in &roots {
        let idx = op_index[&root];
        for &pipe in &pipes_above(plan, parents, root) {
            let rowop = pipe_to_rowop(plan, pipe)?;
            ops[idx].transforms.push(rowop);
        }
    }
    let emit = if roots.len() == 1 {
        EmitSpec::Single(RSource::Op(op_index[&roots[0]]))
    } else {
        EmitSpec::Tagged(roots.iter().map(|r| RSource::Op(op_index[r])).collect())
    };
    for (tag, &root) in roots.iter().enumerate() {
        published.insert(
            root,
            Published {
                path: out_path.to_string(),
                tag: if roots.len() == 1 {
                    None
                } else {
                    Some(tag as i64)
                },
                schema: published_schema(plan, parents, root),
            },
        );
    }

    // ---- reduce-task count --------------------------------------------------
    let key_arity = inputs.first().map_or(0, |i| i.key_exprs.len());
    for input in &inputs {
        if input.key_exprs.len() != key_arity {
            return Err(CoreError::Translate(format!(
                "job {seq}: inputs disagree on key arity ({} vs {})",
                input.key_exprs.len(),
                key_arity
            )));
        }
    }
    let needs_single_reducer = key_arity == 0
        || ops.iter().any(|op| {
            op.transforms
                .iter()
                .any(|t| matches!(t, RowOp::Sort(_) | RowOp::Limit(_)))
        });
    let reduce_tasks = if needs_single_reducer { Some(1) } else { None };

    // ---- combiner (map-side hash aggregation, footnote 2) -------------------
    let mut combiner = None;
    let single_stream = stream_count == 1 && inputs.len() == 1 && inputs[0].branches.len() == 1;
    if opts.combiner && opts.value_pad_bytes == 0 && single_stream && ops.len() == 1 {
        if let OpKind::Agg {
            group_cols, aggs, ..
        } = &ops[0].kind
        {
            if !aggs.is_empty() && aggs.iter().all(|(f, _)| f.combinable()) {
                combiner = Some(PartialAgg {
                    group_cols: group_cols.clone(),
                    aggs: aggs.clone(),
                });
                let g = group_cols.len();
                if let OpKind::Agg {
                    group_cols,
                    merge_partials,
                    ..
                } = &mut ops[0].kind
                {
                    *group_cols = (0..g).collect();
                    *merge_partials = true;
                }
            }
        }
    }

    // ---- short-circuit streams (hand-coded mode) ----------------------------
    let mut short_circuit_streams = Vec::new();
    if opts.short_circuit {
        // Streams that feed an inner join directly: an empty side means the
        // key can produce no output along that path (§VII-C case 4). Sound
        // only when every root consumes the join's output through
        // inner-join/aggregation chains, which holds for the merged
        // subtrees the paper hand-codes; we conservatively require a single
        // root.
        if roots.len() == 1 {
            for op in &ops {
                if let OpKind::Join {
                    kind: ysmart_plan::JoinKind::Inner,
                    ..
                } = op.kind
                {
                    for src in &op.inputs {
                        if let RSource::Stream(s) = src {
                            short_circuit_streams.push(*s);
                        }
                    }
                }
            }
        }
    }

    // Statistics-informed reduce sizing: the job's key space is the
    // anchor operations' shared partition key; the smallest estimate over
    // the merged nodes bounds useful reducer counts.
    let key_cardinality = draft
        .nodes
        .iter()
        .filter_map(|n| report.info(*n).estimated_keys)
        .min();

    let labels: Vec<String> = draft
        .nodes
        .iter()
        .map(|n| format!("{}{}", plan.node(*n).op.name(), n))
        .collect();
    Ok(JobBlueprint {
        name: format!("J{seq}[{}]", labels.join("+")),
        inputs,
        streams,
        ops,
        emit,
        output: out_path.to_string(),
        reduce_tasks,
        combiner,
        map_only: false,
        short_circuit_streams,
        pad_bytes: opts.value_pad_bytes,
        key_cardinality,
    })
}

/// Adds a branch to an existing compatible input (same path, key, tag) or
/// creates a new input. `allow_share` gates the shared-scan optimisation.
#[allow(clippy::too_many_arguments)]
fn add_branch(
    pending: &mut Vec<PendingInput>,
    path: &str,
    schema: Schema,
    key_exprs: Vec<Expr>,
    tag_filter: Option<i64>,
    stream: usize,
    predicate: Option<Expr>,
    interface: Vec<Expr>,
    allow_share: bool,
) {
    if allow_share {
        if let Some(p) = pending
            .iter_mut()
            .find(|p| p.path == path && p.key_exprs == key_exprs && p.tag_filter == tag_filter)
        {
            p.branches.push((stream, predicate, interface));
            return;
        }
    }
    pending.push(PendingInput {
        path: path.to_string(),
        schema,
        key_exprs,
        tag_filter,
        branches: vec![(stream, predicate, interface)],
    });
}

/// Compiles a shuffle-free plan (selection/projection only) into one
/// map-only job.
fn compile_map_only(
    plan: &Plan,
    start: NodeId,
    opts: &TranslateOptions,
    out_path: &str,
) -> Result<JobBlueprint, CoreError> {
    let ChainEnd::Scan {
        scan,
        predicate,
        interface,
    } = resolve_chain(plan, start)?
    else {
        return Err(CoreError::Translate(
            "map-only compilation requires a scan chain".into(),
        ));
    };
    let Operator::Scan { table, .. } = &plan.node(scan).op else {
        unreachable!()
    };
    let schema = plan.node(scan).schema.clone();
    let used: BTreeSet<usize> = interface
        .iter()
        .flat_map(Expr::referenced_columns)
        .collect();
    let value_cols: Vec<usize> = used.into_iter().collect();
    let pos_of: HashMap<usize, usize> = value_cols
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i))
        .collect();
    let projection: Vec<Expr> = interface
        .iter()
        .map(|e| e.remap_columns(&|c| pos_of[&c]))
        .collect();
    Ok(JobBlueprint {
        name: format!("J1[SP:{table}]"),
        inputs: vec![InputSpec {
            path: ysmart_mapred::Cluster::table_path(table),
            schema,
            key_exprs: vec![],
            value_cols,
            branches: vec![MapBranch {
                stream: 0,
                predicate,
            }],
            tag_filter: None,
        }],
        streams: vec![StreamSpec { projection }],
        ops: vec![],
        emit: EmitSpec::Single(RSource::Stream(0)),
        output: out_path.to_string(),
        reduce_tasks: None,
        combiner: None,
        map_only: true,
        short_circuit_streams: vec![],
        pad_bytes: opts.value_pad_bytes,
        key_cardinality: None,
    })
}

/// A dummy schema field list for tests.
#[cfg(test)]
pub(crate) fn int_schema(q: &str, cols: &[&str]) -> Schema {
    use ysmart_rel::{DataType, Field};
    Schema::new(
        cols.iter()
            .map(|c| Field::new(q, c, DataType::Int))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Strategy;
    use ysmart_plan::{analyze, build_plan, Catalog};
    use ysmart_sql::parse;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "clicks",
            int_schema("clicks", &["uid", "page_id", "cid", "ts"]),
        );
        c.add_table(
            "lineitem",
            int_schema(
                "lineitem",
                &[
                    "l_orderkey",
                    "l_partkey",
                    "l_suppkey",
                    "l_quantity",
                    "l_extendedprice",
                ],
            ),
        );
        c.add_table("part", int_schema("part", &["p_partkey", "p_size"]));
        c
    }

    fn translate(sql: &str, strategy: Strategy) -> Translation {
        let plan = build_plan(&catalog(), &parse(sql).unwrap()).unwrap();
        let report = analyze(&plan);
        compile(&plan, &report, &strategy.options(), "q").unwrap()
    }

    #[test]
    fn map_only_sp_query() {
        let t = translate("SELECT uid, ts FROM clicks WHERE cid = 3", Strategy::YSmart);
        assert_eq!(t.job_count(), 1);
        assert!(t.blueprints[0].map_only);
        assert_eq!(t.output_schema.len(), 2);
    }

    #[test]
    fn single_agg_job_gets_combiner() {
        let t = translate(
            "SELECT cid, count(*) FROM clicks GROUP BY cid",
            Strategy::Hive,
        );
        assert_eq!(t.job_count(), 1);
        assert!(t.blueprints[0].combiner.is_some());
        // Pig: no combiner, padded values.
        let t = translate(
            "SELECT cid, count(*) FROM clicks GROUP BY cid",
            Strategy::Pig,
        );
        assert!(t.blueprints[0].combiner.is_none());
        assert!(t.blueprints[0].pad_bytes > 0);
    }

    #[test]
    fn count_distinct_disables_combiner() {
        let t = translate(
            "SELECT cid, count(distinct uid) FROM clicks GROUP BY cid",
            Strategy::Hive,
        );
        assert!(t.blueprints[0].combiner.is_none());
    }

    #[test]
    fn self_join_shares_scan_under_ysmart_not_hive() {
        let sql = "SELECT c1.uid, count(*) FROM clicks AS c1, clicks AS c2 \
                   WHERE c1.uid = c2.uid AND c1.cid = 1 AND c2.cid = 2 GROUP BY c1.uid";
        let ys = translate(sql, Strategy::YSmart);
        // Join + agg merged (JFC), single input on clicks (shared scan).
        let join_job = &ys.blueprints[0];
        assert_eq!(
            join_job
                .inputs
                .iter()
                .filter(|i| i.path == "data/clicks")
                .count(),
            1,
            "shared scan: {join_job:?}"
        );
        assert_eq!(join_job.inputs[0].branches.len(), 2);

        let hive = translate(sql, Strategy::Hive);
        let hive_join = &hive.blueprints[0];
        assert_eq!(
            hive_join
                .inputs
                .iter()
                .filter(|i| i.path == "data/clicks")
                .count(),
            2,
            "Hive scans the table once per instance"
        );
    }

    #[test]
    fn global_agg_single_reducer() {
        let t = translate("SELECT count(*) FROM clicks", Strategy::YSmart);
        assert_eq!(t.blueprints[0].reduce_tasks, Some(1));
    }

    #[test]
    fn sort_limit_single_reducer() {
        let t = translate(
            "SELECT uid, ts FROM clicks ORDER BY ts DESC LIMIT 3",
            Strategy::YSmart,
        );
        let bp = t.blueprints.last().unwrap();
        assert_eq!(bp.reduce_tasks, Some(1));
        let has_sort = bp
            .ops
            .iter()
            .any(|op| op.transforms.iter().any(|tr| matches!(tr, RowOp::Sort(_))));
        assert!(has_sort);
    }

    #[test]
    fn q17_ysmart_two_jobs_hive_four() {
        let sql = "SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
            FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1
                  FROM lineitem GROUP BY l_partkey) AS inner_t,
                 (SELECT l_partkey, l_quantity, l_extendedprice
                  FROM lineitem, part
                  WHERE p_partkey = l_partkey) AS outer_t
            WHERE outer_t.l_partkey = inner_t.l_partkey
              AND outer_t.l_quantity < inner_t.t1";
        let ys = translate(sql, Strategy::YSmart);
        assert_eq!(ys.job_count(), 2);
        // First job: one scan of lineitem (two branches) + part; three ops.
        let j1 = &ys.blueprints[0];
        assert_eq!(
            j1.inputs
                .iter()
                .filter(|i| i.path == "data/lineitem")
                .count(),
            1
        );
        assert_eq!(j1.ops.len(), 3);
        let hive = translate(sql, Strategy::Hive);
        assert_eq!(hive.job_count(), 4);
    }

    #[test]
    fn join_residual_rechecks_keys() {
        let t = translate(
            "SELECT l_extendedprice FROM lineitem, part WHERE p_partkey = l_partkey",
            Strategy::Hive,
        );
        let join_bp = &t.blueprints[0];
        let OpKind::Join { residual, .. } = &join_bp.ops[0].kind else {
            panic!("expected join op");
        };
        assert!(residual.is_some(), "equi keys re-checked in residual");
    }

    #[test]
    fn hand_coded_marks_short_circuit_streams() {
        let sql = "SELECT c1.uid, count(*) FROM clicks AS c1, clicks AS c2 \
                   WHERE c1.uid = c2.uid AND c1.cid = 1 AND c2.cid = 2 GROUP BY c1.uid";
        let hc = translate(sql, Strategy::HandCoded);
        assert!(!hc.blueprints[0].short_circuit_streams.is_empty());
        let ys = translate(sql, Strategy::YSmart);
        assert!(ys.blueprints[0].short_circuit_streams.is_empty());
    }

    #[test]
    fn multi_output_job_publishes_tagged() {
        // Rule 1 without JFC: AGG and JOIN share a job but publish two
        // outputs; downstream jobs read them with tag filters.
        let sql = "SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
            FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1
                  FROM lineitem GROUP BY l_partkey) AS inner_t,
                 (SELECT l_partkey, l_quantity, l_extendedprice
                  FROM lineitem, part
                  WHERE p_partkey = l_partkey) AS outer_t
            WHERE outer_t.l_partkey = inner_t.l_partkey
              AND outer_t.l_quantity < inner_t.t1";
        let t = translate(sql, Strategy::YSmartNoJfc);
        assert_eq!(t.job_count(), 3);
        let j1 = &t.blueprints[0];
        assert!(matches!(j1.emit, EmitSpec::Tagged(_)), "{:?}", j1.emit);
        let j2 = &t.blueprints[1];
        assert!(
            j2.inputs.iter().any(|i| i.tag_filter.is_some()),
            "{:?}",
            j2.inputs
        );
    }
}
