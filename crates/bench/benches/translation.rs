//! Criterion micro-benchmarks of the translation pipeline itself: parsing,
//! planning, correlation analysis and job compilation. These measure the
//! *translator's* speed (wall time of this library), not simulated cluster
//! time — YSmart's analysis must stay cheap relative to the jobs it saves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ysmart_core::Strategy;
use ysmart_datagen::tpch_catalog;
use ysmart_plan::{analyze, build_plan};
use ysmart_queries::workloads::{q17_sql, q21_sql, q_csa_sql};
use ysmart_sql::parse;

fn catalogs() -> (ysmart_plan::Catalog, ysmart_plan::Catalog) {
    (tpch_catalog(), ysmart_datagen::clicks_catalog())
}

fn bench_parse(c: &mut Criterion) {
    let q21 = q21_sql("SAUDI ARABIA");
    c.bench_function("parse/q21-full", |b| {
        b.iter(|| parse(black_box(&q21)).unwrap())
    });
    let q_csa = q_csa_sql(1, 2);
    c.bench_function("parse/q-csa", |b| {
        b.iter(|| parse(black_box(&q_csa)).unwrap())
    });
}

fn bench_plan_and_analyze(c: &mut Criterion) {
    let (tpch, clicks) = catalogs();
    let q17 = parse(&q17_sql()).unwrap();
    c.bench_function("plan/q17", |b| {
        b.iter(|| build_plan(black_box(&tpch), black_box(&q17)).unwrap())
    });
    let q_csa = parse(&q_csa_sql(1, 2)).unwrap();
    let plan = build_plan(&clicks, &q_csa).unwrap();
    c.bench_function("correlations/q-csa", |b| {
        b.iter(|| analyze(black_box(&plan)))
    });
}

fn bench_translate(c: &mut Criterion) {
    let (tpch, _) = catalogs();
    let q21 = q21_sql("SAUDI ARABIA");
    for strategy in [Strategy::Hive, Strategy::YSmart] {
        c.bench_function(&format!("translate/q21/{strategy}"), |b| {
            b.iter(|| {
                ysmart_core::translate(black_box(&tpch), black_box(&q21), strategy, "bench")
                    .unwrap()
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parse, bench_plan_and_analyze, bench_translate
}
criterion_main!(benches);
