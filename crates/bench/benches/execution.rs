//! Criterion micro-benchmarks of end-to-end query execution on the
//! simulated cluster (real data processing wall time, small instances).
//! Useful for tracking regressions in the CMF hot paths: the common
//! mapper's branch evaluation, the shuffle sort and the common reducer's
//! dispatch loop.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ysmart_core::{Strategy, YSmart};
use ysmart_datagen::{ClicksSpec, TpchSpec};
use ysmart_mapred::ClusterConfig;
use ysmart_queries::{clicks_workloads, tpch_workloads, Workload};

fn run(w: &Workload, strategy: Strategy) -> f64 {
    let mut engine = YSmart::new(w.catalog.clone(), ClusterConfig::default());
    w.load_into(&mut engine).unwrap();
    engine.execute_sql(&w.sql, strategy).unwrap().total_s()
}

fn bench_q17(c: &mut Criterion) {
    let tpch = tpch_workloads(&TpchSpec {
        scale: 0.2,
        seed: 7,
    });
    let w = tpch.iter().find(|w| w.name == "q17").unwrap();
    for strategy in [Strategy::Hive, Strategy::YSmart] {
        c.bench_function(&format!("execute/q17/{strategy}"), |b| {
            b.iter(|| black_box(run(w, strategy)))
        });
    }
}

fn bench_q_csa(c: &mut Criterion) {
    let clicks = clicks_workloads(&ClicksSpec {
        users: 20,
        clicks_per_user: 20,
        seed: 7,
        ..ClicksSpec::default()
    });
    let w = clicks.iter().find(|w| w.name == "q-csa").unwrap();
    for strategy in [Strategy::Hive, Strategy::YSmart] {
        c.bench_function(&format!("execute/q-csa/{strategy}"), |b| {
            b.iter(|| black_box(run(w, strategy)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_q17, bench_q_csa
}
criterion_main!(benches);
