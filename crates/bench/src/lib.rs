//! # ysmart-bench — figure harnesses and micro-benchmarks
//!
//! One binary per figure of the paper's evaluation (§VII):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig2`  | Fig. 2(b) — Hive vs hand-coded on Q-AGG and Q-CSA |
//! | `fig9`  | Fig. 9 — Q21-subtree per-job breakdown under 4 configurations |
//! | `fig10` | Fig. 10 — small cluster: YSmart/Hive/Pig/ideal-pgsql on all queries |
//! | `fig11` | Fig. 11 — EC2 11/101 nodes, compression on/off |
//! | `fig12` | Fig. 12 — Facebook cluster, 3 concurrent Q17 instances per system |
//! | `fig13` | Fig. 13 — Facebook cluster, Q18/Q21 averages |
//! | `jobcounts` | §VII-A job-count table |
//! | `fig_workload` | multi-tenant overload sweep: latency/hit-rate/shed-rate vs offered load |
//!
//! Each harness *executes the queries for real* on the simulated cluster,
//! verifies the result against the oracle, and only then reports simulated
//! times. Criterion micro-benchmarks live under `benches/`.

use std::collections::BTreeMap;

use ysmart_core::{CoreError, QueryOutcome, Strategy, YSmart};
use ysmart_mapred::ClusterConfig;
use ysmart_queries::{oracle_execute, rows_approx_equal, DbmsProfile, Workload};
use ysmart_rel::Row;

/// Runs one workload under one strategy on a cluster config, scaling the
/// simulated data volume to `target_gb`, and verifies the result against
/// the oracle before returning.
///
/// # Errors
///
/// Execution failures (the paper's DNF cases: disk full, time limit) and
/// verification mismatches (reported as `CoreError::Translate` — they mean
/// a translator bug and invalidate the figure).
pub fn execute_verified(
    w: &Workload,
    strategy: Strategy,
    config: &ClusterConfig,
    target_gb: f64,
) -> Result<QueryOutcome, CoreError> {
    execute_verified_traced(w, strategy, config, target_gb, false).map(|(out, _)| out)
}

/// [`execute_verified`], optionally with structured execution tracing: when
/// `traced` is set, the returned [`ysmart_mapred::Trace`] holds one span
/// per simulated event of the run, exportable as Chrome-trace JSON.
///
/// # Errors
///
/// Same as [`execute_verified`].
pub fn execute_verified_traced(
    w: &Workload,
    strategy: Strategy,
    config: &ClusterConfig,
    target_gb: f64,
    traced: bool,
) -> Result<(QueryOutcome, Option<ysmart_mapred::Trace>), CoreError> {
    let mut engine = YSmart::new(w.catalog.clone(), config.clone());
    if traced {
        engine.enable_tracing();
    }
    w.load_into(&mut engine)?;
    let real_bytes = engine.cluster.hdfs.total_bytes().max(1);
    engine.cluster.config.size_multiplier = (target_gb * 1e9) / real_bytes as f64;
    let out = engine.execute_sql(&w.sql, strategy)?;
    let trace = engine.take_trace();

    let tables: BTreeMap<String, Vec<Row>> = w
        .tables
        .iter()
        .map(|(n, r)| ((*n).to_string(), r.clone()))
        .collect();
    let plan = engine.plan(&w.sql)?;
    let expected = oracle_execute(&plan, &tables)?;
    let ok = rows_approx_equal(&out.rows, &expected.rows, w.ordered);
    if !ok {
        return Err(CoreError::Translate(format!(
            "{} under {strategy}: result does not match the oracle ({} vs {} rows)",
            w.name,
            out.rows.len(),
            expected.rows.len()
        )));
    }
    Ok((out, trace))
}

/// The "ideal parallel PostgreSQL" time of §VII-D: the oracle's single-node
/// simulated time at the target volume, divided by the assumed perfect
/// parallelism (the paper runs quarter-size data on one core of four).
///
/// # Errors
///
/// Oracle evaluation failures.
pub fn pgsql_seconds(w: &Workload, target_gb: f64) -> Result<f64, CoreError> {
    let tables: BTreeMap<String, Vec<Row>> = w
        .tables
        .iter()
        .map(|(n, r)| ((*n).to_string(), r.clone()))
        .collect();
    let real_bytes: u64 = w
        .tables
        .iter()
        .flat_map(|(_, rows)| rows.iter())
        .map(|r| r.size_bytes() as u64 + 1)
        .sum();
    let mult = (target_gb * 1e9) / real_bytes.max(1) as f64;
    let q = ysmart_sql::parse(&w.sql)?;
    let plan = ysmart_plan::build_plan(&w.catalog, &q)?;
    let out = oracle_execute(&plan, &tables)?;
    let profile = DbmsProfile::default();
    let scaled = ysmart_queries::OracleOutcome {
        rows: Vec::new(),
        row_ops: (out.row_ops as f64 * mult) as u64,
        bytes_scanned: (out.bytes_scanned as f64 * mult) as u64,
    };
    Ok(profile.seconds(&scaled))
}

/// Formats seconds as `MMmSSs` for compact tables.
#[must_use]
pub fn fmt_secs(s: f64) -> String {
    format!("{:>7.1}s", s)
}

/// Prints a per-job map/reduce breakdown (the bar contents of Figs. 9, 10
/// and 12).
pub fn print_breakdown(label: &str, outcome: &QueryOutcome) {
    println!("  {label}: total {}", fmt_secs(outcome.total_s()));
    for j in &outcome.metrics.jobs {
        println!(
            "    {:<40} map {} reduce {} (delay {})",
            j.name,
            fmt_secs(j.map_time_s),
            fmt_secs(j.reduce_time_s),
            fmt_secs(j.startup_delay_s),
        );
    }
}

/// A row of a figure summary table.
#[derive(Debug, Clone)]
pub struct FigRow {
    /// Series label ("YSmart", "Hive c", …).
    pub label: String,
    /// Seconds, or the DNF reason.
    pub result: Result<f64, String>,
}

/// Prints a summary table and speedup lines (the paper reports YSmart's
/// speedup over each competitor as a percentage).
pub fn print_summary(title: &str, rows: &[FigRow]) {
    println!("{title}");
    let base = rows
        .iter()
        .find(|r| r.label.to_lowercase().contains("ysmart") && !r.label.contains("no-jfc"))
        .and_then(|r| r.result.as_ref().ok().copied());
    for r in rows {
        match &r.result {
            Ok(s) => {
                let speedup = base
                    .filter(|b| *b > 0.0 && !r.label.to_lowercase().contains("ysmart"))
                    .map(|b| {
                        format!(
                            "  ({:.0}% of YSmart speedup base: {:.2}x)",
                            s / b * 100.0,
                            s / b
                        )
                    })
                    .unwrap_or_default();
                println!("  {:<16} {}{}", r.label, fmt_secs(*s), speedup);
            }
            Err(reason) => println!("  {:<16}     DNF ({reason})", r.label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ysmart_datagen::ClicksSpec;
    use ysmart_queries::clicks_workloads;

    #[test]
    fn execute_verified_catches_real_runs() {
        let ws = clicks_workloads(&ClicksSpec {
            users: 6,
            clicks_per_user: 10,
            ..ClicksSpec::default()
        });
        let out = execute_verified(
            &ws[0],
            Strategy::YSmart,
            &ClusterConfig::small_local(),
            0.001,
        )
        .unwrap();
        assert!(out.total_s() > 0.0);
    }

    #[test]
    fn pgsql_baseline_positive() {
        let ws = clicks_workloads(&ClicksSpec {
            users: 6,
            clicks_per_user: 10,
            ..ClicksSpec::default()
        });
        assert!(pgsql_seconds(&ws[0], 1.0).unwrap() > 0.0);
    }

    #[test]
    fn fmt_and_print_helpers() {
        assert!(fmt_secs(1.25).contains("1.2"));
        print_summary(
            "t",
            &[
                FigRow {
                    label: "YSmart".into(),
                    result: Ok(10.0),
                },
                FigRow {
                    label: "Hive".into(),
                    result: Ok(25.0),
                },
                FigRow {
                    label: "Pig".into(),
                    result: Err("disk full".into()),
                },
            ],
        );
    }
}
