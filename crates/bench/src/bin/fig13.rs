//! Fig. 13 — Q18 and Q21 on the Facebook production cluster: average of
//! three concurrent instances per system over 1 TB (§VII-F).
//!
//! Paper shape: average speedups of YSmart over Hive around 298% (Q18) and
//! 336% (Q21) — *larger* than on isolated clusters, because scheduling
//! gaps multiply with job count.

use ysmart_bench::{execute_verified, FigRow};
use ysmart_core::Strategy;
use ysmart_datagen::TpchSpec;
use ysmart_mapred::ClusterConfig;
use ysmart_queries::tpch_workloads;

fn main() {
    println!("=== Fig. 13: Q18/Q21 on the Facebook production cluster, 1 TB ===");
    // A larger real instance keeps the simulated key space rich enough for
    // the production cluster's hundreds of reduce tasks (tiny key spaces
    // would create artificial reducer skew that true 1 TB data lacks).
    let tpch = tpch_workloads(&TpchSpec {
        scale: 8.0,
        seed: 2024,
    });
    for name in ["q18", "q21"] {
        let w = tpch.iter().find(|w| w.name == name).expect("workload");
        let mut rows = Vec::new();
        let mut sums = [(0.0, 0usize), (0.0, 0usize)]; // (ysmart, hive)
        for instance in 0..3u64 {
            for (k, (sys, strategy)) in [("YSmart", Strategy::YSmart), ("Hive", Strategy::Hive)]
                .into_iter()
                .enumerate()
            {
                let config = ClusterConfig::facebook(2000 + instance);
                let label = format!("{sys} {}", instance + 1);
                let result = execute_verified(w, strategy, &config, 1000.0)
                    .map(|o| o.total_s())
                    .map_err(|e| e.to_string());
                if let Ok(s) = result {
                    sums[k].0 += s;
                    sums[k].1 += 1;
                }
                rows.push(FigRow { label, result });
            }
        }
        ysmart_bench::print_summary(&format!("{name}:"), &rows);
        let ys = sums[0].0 / sums[0].1.max(1) as f64;
        let hive = sums[1].0 / sums[1].1.max(1) as f64;
        println!(
            "  {name} averages: YSmart {ys:.0}s, Hive {hive:.0}s — Hive/YSmart = {:.2}x",
            hive / ys
        );
    }
}
