//! Fig. 9 — breakdown of job finishing times for the Q21 "Left Outer
//! Join 1" subtree on the small local cluster with 10 GB TPC-H data
//! (§VII-C).
//!
//! Four configurations, as in the paper:
//! 1. one-operation-to-one-job (5 jobs),
//! 2. input + transit correlation only (3 jobs),
//! 3. all correlations — YSmart (1 job),
//! 4. hand-coded program (1 job with short-circuiting).
//!
//! Paper numbers for orientation: 1140 s / 773 s / 561 s / 479 s.

use ysmart_bench::{execute_verified, print_breakdown, FigRow};
use ysmart_core::Strategy;
use ysmart_datagen::TpchSpec;
use ysmart_mapred::ClusterConfig;
use ysmart_queries::tpch_workloads;

fn main() {
    let workloads = tpch_workloads(&TpchSpec {
        scale: 1.0,
        seed: 2024,
    });
    let w = workloads
        .iter()
        .find(|w| w.name == "q21-subtree")
        .expect("workload");
    let config = ClusterConfig::small_local();
    let target_gb = 10.0;

    println!("=== Fig. 9: Q21 subtree, small local cluster, 10 GB TPC-H ===");
    let cases = [
        ("1-op-1-job", Strategy::Hive),
        ("IC+TC only", Strategy::YSmartNoJfc),
        ("YSmart (all)", Strategy::YSmart),
        ("hand-coded", Strategy::HandCoded),
    ];
    let mut rows = Vec::new();
    for (label, strategy) in cases {
        match execute_verified(w, strategy, &config, target_gb) {
            Ok(out) => {
                print_breakdown(&format!("{label} ({} jobs)", out.jobs), &out);
                rows.push(FigRow {
                    label: label.to_string(),
                    result: Ok(out.total_s()),
                });
            }
            Err(e) => rows.push(FigRow {
                label: label.to_string(),
                result: Err(e.to_string()),
            }),
        }
    }
    ysmart_bench::print_summary("--- totals ---", &rows);
}
