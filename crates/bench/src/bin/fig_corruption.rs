//! Data-integrity figure — the cost of checksums and corruption recovery,
//! YSmart vs Hive.
//!
//! Not a figure from the paper: the paper's §VII assumes intact bytes. This
//! harness flips actual bits — HDFS block replicas, shuffle segments in
//! flight, torn input records — at swept rates and measures what each
//! translation strategy pays to detect and recover. The mechanism favouring
//! YSmart is the same one behind every paper figure: fewer jobs means fewer
//! bytes checksummed, fewer blocks and segments exposed to corruption, and
//! fewer chances for a job-level retry.
//!
//! Every run is verified against the relational oracle — corruption may
//! change simulated time, never a result row, because only checksum-clean
//! canonical bytes ever reach the computation. Results go to
//! `results/corruption.txt` (report) and `results/corruption.json`
//! (machine-readable). Pass `--smoke` for a CI-sized sweep.

use ysmart_bench::{execute_verified, fmt_secs};
use ysmart_core::{FaultOptions, Strategy};
use ysmart_datagen::{ClicksSpec, TpchSpec};
use ysmart_mapred::{ClusterConfig, DataFormat};
use ysmart_queries::{clicks_workloads, tpch_workloads, Workload};

const RATES: [f64; 3] = [0.0, 1e-4, 1e-3];
const SMOKE_RATES: [f64; 2] = [0.0, 1e-3];
const SEEDS: u64 = 3;
const TARGET_GB: f64 = 10.0;

/// Accumulated measurements for one (system, rate) cell of the sweep.
#[derive(Default, Clone)]
struct Cell {
    runs: u64,
    total_s: f64,
    overhead_s: f64,
    verify_s: f64,
    corrupt_blocks: u64,
    refetched_segments: u64,
    skipped_records: u64,
    blacklisted_nodes: u64,
    retries: u64,
}

impl Cell {
    fn events(&self) -> u64 {
        self.corrupt_blocks + self.refetched_segments + self.skipped_records
    }
}

/// Small HDFS blocks so the workloads' real data spans enough blocks and
/// shuffle segments for per-block/per-segment corruption draws to matter.
fn cluster(format: DataFormat) -> ClusterConfig {
    ClusterConfig {
        hdfs_block_mb: 0.01,
        data_format: format,
        ..ClusterConfig::ec2(10)
    }
}

fn format_name(format: DataFormat) -> &'static str {
    match format {
        DataFormat::Text => "text",
        DataFormat::Columnar => "columnar",
    }
}

fn json_cell(rate: f64, c: &Cell) -> String {
    let n = c.runs.max(1) as f64;
    format!(
        concat!(
            "{{\"rate\":{},\"avg_total_s\":{:.3},\"avg_overhead_s\":{:.3},",
            "\"avg_verify_s\":{:.3},\"corrupt_blocks\":{},\"refetched_segments\":{},",
            "\"skipped_records\":{},\"blacklisted_nodes\":{},\"retries\":{}}}"
        ),
        rate,
        c.total_s / n,
        c.overhead_s / n,
        c.verify_s / n,
        c.corrupt_blocks,
        c.refetched_segments,
        c.skipped_records,
        c.blacklisted_nodes,
        c.retries,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rates, seeds, target_gb): (&[f64], u64, f64) = if smoke {
        (&SMOKE_RATES, 1, 1.0)
    } else {
        (&RATES, SEEDS, TARGET_GB)
    };

    let mut report = String::new();
    let mut emit = |line: &str| {
        println!("{line}");
        report.push_str(line);
        report.push('\n');
    };

    emit("=== Integrity tax and corruption recovery (not in the paper) ===");
    emit(&format!(
        "fig-10 queries, {target_gb} GB each, 11-node EC2 cluster; {seeds} seeds per rate"
    ));
    emit("overhead = avg total vs the same system with integrity checking off");

    let tpch = tpch_workloads(&TpchSpec {
        scale: 1.0,
        seed: 2024,
    });
    let clicks = clicks_workloads(&ClicksSpec {
        users: 60,
        clicks_per_user: 30,
        seed: 2024,
        ..ClicksSpec::default()
    });
    let mut workloads: Vec<&Workload> = ["q17", "q18", "q21"]
        .iter()
        .map(|n| tpch.iter().find(|w| &w.name == n).expect("tpch workload"))
        .collect();
    workloads.push(clicks.iter().find(|w| w.name == "q-csa").expect("q-csa"));
    if smoke {
        workloads.truncate(2);
    }

    let systems = [("ysmart", Strategy::YSmart), ("hive", Strategy::Hive)];
    let mut json_formats = Vec::new();

    // The whole sweep runs once per storage format: recovery must be
    // format-independent (every run is oracle-verified either way), and the
    // YSmart-vs-Hive integrity-overhead ordering must hold in both.
    for format in [DataFormat::Text, DataFormat::Columnar] {
        emit(&format!("=== storage format: {} ===", format_name(format)));
        let mut json_systems = Vec::new();
        // Max-rate average overhead per system, for the headline comparison.
        let mut max_rate_overhead = Vec::new();

        for (sys, strategy) in systems {
            emit(&format!("--- {sys} ---"));
            emit("  rate        total    overhead   verify   blocks  segs  records  blisted  retries");

            // Healthy baseline: no corruption model at all, so no checksum pass
            // is charged. The delta against it prices the whole integrity
            // layer: verification plus recovery.
            let mut healthy = Vec::new();
            for w in &workloads {
                let out = execute_verified(w, strategy, &cluster(format), target_gb)
                    .expect("healthy run");
                healthy.push(out.total_s());
            }

            let mut cells = Vec::new();
            for &rate in rates {
                let mut cell = Cell::default();
                for (wi, w) in workloads.iter().enumerate() {
                    for seed in 0..seeds {
                        let mut config = cluster(format);
                        FaultOptions::corrupted(rate, seed ^ (wi as u64) << 8).apply(&mut config);
                        let out = execute_verified(w, strategy, &config, target_gb)
                            .expect("oracle-verified corrupted run");
                        cell.runs += 1;
                        cell.total_s += out.total_s();
                        cell.overhead_s += out.total_s() - healthy[wi];
                        cell.verify_s += out.metrics.total_verify_s();
                        for j in &out.metrics.jobs {
                            cell.corrupt_blocks += j.corrupt_blocks_detected;
                            cell.refetched_segments += j.refetched_segments;
                            cell.skipped_records += j.skipped_records;
                            cell.blacklisted_nodes += j.blacklisted_nodes as u64;
                        }
                        cell.retries += out.metrics.retries as u64;
                    }
                }
                let n = cell.runs as f64;
                emit(&format!(
                    "  {:<9}{}  {}  {}  {:>6}  {:>4}  {:>7}  {:>7}  {:>7}",
                    rate,
                    fmt_secs(cell.total_s / n),
                    fmt_secs(cell.overhead_s / n),
                    fmt_secs(cell.verify_s / n),
                    cell.corrupt_blocks,
                    cell.refetched_segments,
                    cell.skipped_records,
                    cell.blacklisted_nodes,
                    cell.retries,
                ));
                if rate > 0.0 {
                    assert!(
                        cell.events() > 0,
                        "{sys}: rate {rate} must trigger integrity events across the sweep"
                    );
                }
                cells.push((rate, cell));
            }

            let last = cells.last().expect("at least one rate");
            max_rate_overhead.push((sys, last.1.overhead_s / last.1.runs as f64));
            let rows: Vec<String> = cells.iter().map(|(r, c)| json_cell(*r, c)).collect();
            json_systems.push(format!(
                "{{\"system\":\"{sys}\",\"rates\":[{}]}}",
                rows.join(",")
            ));
        }

        let (ys, hv) = (max_rate_overhead[0].1, max_rate_overhead[1].1);
        emit("");
        emit(&format!(
            "At the highest rate, integrity overhead: YSmart {} vs Hive {} — fewer",
            fmt_secs(ys),
            fmt_secs(hv)
        ));
        emit("jobs mean fewer bytes checksummed and fewer corruption exposures.");
        assert!(
            ys < hv,
            "{}: YSmart must pay less integrity overhead than Hive ({ys:.1}s vs {hv:.1}s)",
            format_name(format)
        );
        json_formats.push(format!(
            "{{\"format\":\"{}\",\"systems\":[{}]}}",
            format_name(format),
            json_systems.join(",")
        ));
    } // format sweep

    emit("");
    emit("All runs verified against the relational oracle, in both storage");
    emit("formats: corruption changed simulated time only, never a result row.");

    let query_names: Vec<String> = workloads
        .iter()
        .map(|w| format!("\"{}\"", w.name))
        .collect();
    let json = format!(
        concat!(
            "{{\"figure\":\"corruption\",\"target_gb\":{},\"seeds\":{},",
            "\"queries\":[{}],\"formats\":[{}]}}\n"
        ),
        target_gb,
        seeds,
        query_names.join(","),
        json_formats.join(",")
    );

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/corruption.txt", &report).expect("write results/corruption.txt");
    std::fs::write("results/corruption.json", json).expect("write results/corruption.json");
    println!("\nwrote results/corruption.txt and results/corruption.json");
}
