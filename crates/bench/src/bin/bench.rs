//! Real wall-clock benchmark of the fig10 workload suite.
//!
//! Unlike the figure harnesses, which report *simulated* cluster seconds,
//! this binary measures how long the repo itself takes to execute the
//! fig10 queries for real — the number that bounds every figure sweep.
//! Only translation + execution is timed; data generation, table loading
//! and oracle verification stay outside the timed region.
//!
//! Usage:
//!
//! ```text
//! bench [--record-baseline] [--iterations N] [--out PATH] [--smoke] [--compare]
//! ```
//!
//! Every case runs twice per iteration — once in text format, once
//! columnar — so the A/B shows up in `text_s`/`columnar_s`; `current_s`
//! is the columnar number (the engine's default-best path). Results go to
//! `BENCH_wallclock.json`. The first recorded run (via `--record-baseline`)
//! pins `baseline_s`; later runs keep that baseline and update
//! `current_s`/`speedup`, so the perf trajectory of the execution engine
//! is visible across PRs. `--smoke` runs one query at a tiny scale and
//! writes nothing — a CI liveness check. `--compare` is the CI perf gate:
//! it fails if the columnar path is slower than text.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use ysmart_core::{Strategy, YSmart};
use ysmart_datagen::{ClicksSpec, TpchSpec};
use ysmart_mapred::{ClusterConfig, DataFormat};
use ysmart_queries::{
    clicks_workloads, oracle_execute, rows_approx_equal, tpch_workloads, Workload,
};

/// One benchmarked case: a workload executed under every strategy.
struct Case {
    workload: Workload,
    config: ClusterConfig,
    target_gb: f64,
}

fn fig10_cases() -> Vec<Case> {
    let config = ClusterConfig::small_local();
    let tpch = tpch_workloads(&TpchSpec {
        scale: 1.0,
        seed: 2024,
    });
    let mut cases = Vec::new();
    for name in ["q17", "q18", "q21"] {
        let w = tpch.iter().find(|w| w.name == name).expect("workload");
        cases.push(Case {
            workload: w.clone(),
            config: config.clone(),
            target_gb: 10.0,
        });
    }
    let clicks = clicks_workloads(&ClicksSpec {
        users: 120,
        clicks_per_user: 40,
        seed: 2024,
        ..ClicksSpec::default()
    });
    let mut csa_config = config;
    csa_config.disk_capacity_mb = 65_000.0;
    let w = clicks.iter().find(|w| w.name == "q-csa").expect("workload");
    cases.push(Case {
        workload: w.clone(),
        config: csa_config,
        target_gb: 20.0,
    });
    cases
}

const STRATEGIES: [Strategy; 3] = [Strategy::YSmart, Strategy::Hive, Strategy::Pig];

/// Executes every strategy of one case under `format`, returning
/// wall-clock seconds spent inside `execute_sql` (engine build and table
/// loading are not timed). DNF outcomes (the paper's Pig disk-full case)
/// still count the time the engine spent reaching them.
fn run_case(case: &Case, verify: bool, format: DataFormat) -> f64 {
    let mut elapsed = 0.0;
    for strategy in STRATEGIES {
        let mut config = case.config.clone();
        config.data_format = format;
        let mut engine = YSmart::new(case.workload.catalog.clone(), config);
        case.workload.load_into(&mut engine).expect("load");
        let real_bytes = engine.cluster.hdfs.total_bytes().max(1);
        engine.cluster.config.size_multiplier = (case.target_gb * 1e9) / real_bytes as f64;
        let start = Instant::now();
        let out = engine.execute_sql(&case.workload.sql, strategy);
        elapsed += start.elapsed().as_secs_f64();
        if verify {
            if let Ok(out) = &out {
                let tables: BTreeMap<String, Vec<ysmart_rel::Row>> = case
                    .workload
                    .tables
                    .iter()
                    .map(|(n, r)| ((*n).to_string(), r.clone()))
                    .collect();
                let plan = engine.plan(&case.workload.sql).expect("plan");
                let expected = oracle_execute(&plan, &tables).expect("oracle");
                assert!(
                    rows_approx_equal(&out.rows, &expected.rows, case.workload.ordered),
                    "{} under {strategy}: result does not match the oracle",
                    case.workload.name
                );
            }
        }
    }
    elapsed
}

/// Reads `"key": <number>` out of a hand-written JSON file.
fn read_json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn smoke_case() -> Case {
    let tpch = tpch_workloads(&TpchSpec {
        scale: 0.05,
        seed: 2024,
    });
    let w = tpch.iter().find(|w| w.name == "q17").expect("workload");
    Case {
        workload: w.clone(),
        config: ClusterConfig::small_local(),
        target_gb: 0.1,
    }
}

fn smoke() {
    let case = smoke_case();
    let t = run_case(&case, true, DataFormat::Text);
    let c = run_case(&case, true, DataFormat::Columnar);
    println!("smoke: q17 @0.1GB all strategies, text {t:.3}s + columnar {c:.3}s (verified)");
}

/// CI perf gate: the columnar path must not be slower than text. The
/// smoke case is too small to time reliably, so this uses the first real
/// fig10 case (Q17 at full generator scale) and takes minimum-of-N on
/// both sides to shed scheduler noise.
fn compare() {
    let case = fig10_cases().into_iter().next().expect("fig10 case");
    // Verified warm-up in both formats.
    run_case(&case, true, DataFormat::Text);
    run_case(&case, true, DataFormat::Columnar);
    let (mut text, mut col) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        text = text.min(run_case(&case, false, DataFormat::Text));
        col = col.min(run_case(&case, false, DataFormat::Columnar));
    }
    let ratio = text / col;
    println!("compare: text {text:.3}s vs columnar {col:.3}s ({ratio:.2}x)");
    assert!(
        col <= text,
        "columnar path regressed: {col:.3}s vs text {text:.3}s"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if args.iter().any(|a| a == "--compare") {
        compare();
        return;
    }
    let record_baseline = args.iter().any(|a| a == "--record-baseline");
    let iterations: usize = args
        .iter()
        .position(|a| a == "--iterations")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_wallclock.json".to_string());

    let cases = fig10_cases();
    // Untimed verified pass, both formats: a fast engine that returns
    // wrong rows would make every number below meaningless.
    for case in &cases {
        run_case(case, true, DataFormat::Text);
        run_case(case, true, DataFormat::Columnar);
    }

    let mut text_best = f64::INFINITY;
    let mut columnar_best = f64::INFINITY;
    let mut per_query: Vec<(String, f64)> = cases
        .iter()
        .map(|c| (c.workload.name.to_string(), f64::INFINITY))
        .collect();
    for iter in 0..iterations {
        let mut text_total = 0.0;
        let mut col_total = 0.0;
        for (case, slot) in cases.iter().zip(per_query.iter_mut()) {
            text_total += run_case(case, false, DataFormat::Text);
            let s = run_case(case, false, DataFormat::Columnar);
            slot.1 = slot.1.min(s);
            col_total += s;
        }
        println!(
            "iteration {}: text {text_total:.3}s, columnar {col_total:.3}s",
            iter + 1
        );
        text_best = text_best.min(text_total);
        columnar_best = columnar_best.min(col_total);
    }
    let (text_s, columnar_s) = (text_best, columnar_best);
    // The headline number is the engine's best path.
    let current_s = columnar_s;

    let baseline_s = if record_baseline {
        current_s
    } else {
        std::fs::read_to_string(&out_path)
            .ok()
            .and_then(|t| read_json_number(&t, "baseline_s"))
            .unwrap_or(current_s)
    };
    let speedup = baseline_s / current_s;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"suite\": \"fig10\",");
    let _ = writeln!(json, "  \"iterations\": {iterations},");
    let _ = writeln!(json, "  \"baseline_s\": {baseline_s:.4},");
    let _ = writeln!(json, "  \"text_s\": {text_s:.4},");
    let _ = writeln!(json, "  \"columnar_s\": {columnar_s:.4},");
    let _ = writeln!(json, "  \"current_s\": {current_s:.4},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    json.push_str("  \"queries\": {\n");
    for (i, (name, s)) in per_query.iter().enumerate() {
        let comma = if i + 1 < per_query.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {s:.4}{comma}");
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_wallclock.json");
    println!(
        "fig10 suite wall-clock: text {text_s:.3}s, columnar {columnar_s:.3}s \
         (baseline {baseline_s:.3}s, speedup {speedup:.2}x) -> {out_path}"
    );
}
