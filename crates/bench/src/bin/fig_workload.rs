//! Multi-tenant workload figure — latency, deadline hit-rate and shed rate
//! vs. offered load.
//!
//! Not a figure from the paper, but its production setting: §VII-F runs
//! YSmart on a Facebook cluster precisely because many tenants' queries
//! compete for one slot pool. This harness replays a mixed stream of the
//! evaluation queries (Q17, Q18, the Q21 subtree, Q-AGG, Q-CSA) across four
//! weighted tenants through the multi-tenant chain scheduler, under
//! combined straggler + node-loss + corruption injection, at several
//! offered-load levels. Every chain terminates in a typed disposition —
//! completed, deadline-cancelled, shed or failed — and every *completed*
//! chain's rows are verified against the relational oracle.
//!
//! Results go to `results/workload.txt` (report) and
//! `results/workload.json` (machine-readable). Pass `--smoke` for a
//! CI-sized run that also asserts the deadline hit-rate floor.

use std::collections::BTreeMap;

use ysmart_core::{Strategy, YSmart};
use ysmart_datagen::{clicks_catalog, tpch_catalog, ClicksSpec, TpchSpec};
use ysmart_mapred::{
    run_chain, run_workload, validate_chrome_trace, ClusterConfig, CorruptionModel, Disposition,
    NodeFailureModel, QueryRequest, RetryPolicy, SchedulerConfig, StragglerModel, TenantSpec,
};
use ysmart_plan::Catalog;
use ysmart_queries::{
    clicks_workloads, oracle_execute, rows_approx_equal, tpch_workloads, Workload,
};
use ysmart_rel::Row;

/// Offered load as a multiple of the cluster's solo throughput
/// (`max_running / mean_solo_s` chains per second saturates the slots).
const LOADS: [f64; 3] = [0.5, 1.5, 3.0];
const SMOKE_LOADS: [f64; 2] = [0.5, 2.5];
const QUERIES_PER_LOAD: usize = 40;
const SMOKE_QUERIES_PER_LOAD: usize = 14;
const MAX_RUNNING: usize = 4;
/// Deadline = this factor × the query's solo (uncontended, fault-free)
/// time. Generous enough to absorb fair-share slowdown and queueing at
/// moderate load, tight enough that overload visibly misses.
const DEADLINE_FACTOR: f64 = 12.0;
/// Minimum deadline hit-rate at the lowest load level — the CI floor.
const HIT_RATE_FLOOR: f64 = 0.5;

/// SplitMix64: the bench's only randomness, fully determined by the seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a SplitMix64 draw.
fn unit(z: u64) -> f64 {
    (mix(z) >> 11) as f64 / (1u64 << 53) as f64
}

/// One query shape in the mix, with its oracle expectation and solo time.
struct Shape {
    name: &'static str,
    sql: String,
    ordered: bool,
    expected: Vec<Row>,
    solo_s: f64,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[pos.min(sorted.len() - 1)]
}

/// Builds one engine holding *all* base tables (TPC-H + clicks, disjoint
/// names) so every tenant's chains share a single simulated cluster.
fn union_engine(
    tpch: &[Workload],
    clicks: &[Workload],
    target_gb: f64,
) -> (YSmart, BTreeMap<String, Vec<Row>>) {
    let mut catalog = Catalog::new();
    for (name, schema) in tpch_catalog().iter() {
        catalog.add_table(name, schema.clone());
    }
    for (name, schema) in clicks_catalog().iter() {
        catalog.add_table(name, schema.clone());
    }
    let mut engine = YSmart::new(catalog, ClusterConfig::ec2(10));
    let mut tables: BTreeMap<String, Vec<Row>> = BTreeMap::new();
    for (name, rows) in tpch[0].tables.iter().chain(clicks[0].tables.iter()) {
        engine.load_table(name, rows).expect("load base table");
        tables.insert((*name).to_string(), rows.clone());
    }
    let real_bytes = engine.cluster.hdfs.total_bytes().max(1);
    engine.cluster.config.size_multiplier = (target_gb * 1e9) / real_bytes as f64;
    (engine, tables)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (loads, per_load, target_gb): (&[f64], usize, f64) = if smoke {
        (&SMOKE_LOADS, SMOKE_QUERIES_PER_LOAD, 0.5)
    } else {
        (&LOADS, QUERIES_PER_LOAD, 2.0)
    };
    let (tpch_spec, clicks_spec) = if smoke {
        (
            TpchSpec {
                scale: 0.05,
                seed: 2026,
            },
            ClicksSpec {
                users: 15,
                clicks_per_user: 10,
                seed: 2026,
                ..ClicksSpec::default()
            },
        )
    } else {
        (
            TpchSpec {
                scale: 0.2,
                seed: 2026,
            },
            ClicksSpec {
                users: 40,
                clicks_per_user: 20,
                seed: 2026,
                ..ClicksSpec::default()
            },
        )
    };

    let mut report = String::new();
    let mut emit = |line: &str| {
        println!("{line}");
        report.push_str(line);
        report.push('\n');
    };

    emit("=== Multi-tenant workload: latency, deadline hit-rate, shed rate vs load ===");
    emit(&format!(
        "{} queries per load level across 4 weighted tenants, {MAX_RUNNING} chain slots,",
        per_load
    ));
    emit(&format!(
        "{target_gb} GB scaled data, stragglers + node loss + corruption injected,"
    ));
    emit(&format!(
        "deadline = {DEADLINE_FACTOR}x each query's solo time"
    ));

    let tpch = tpch_workloads(&tpch_spec);
    let clicks = clicks_workloads(&clicks_spec);
    let mix_names = ["q17", "q18", "q21-subtree", "q-agg", "q-csa"];
    let source = |n: &str| {
        tpch.iter()
            .chain(clicks.iter())
            .find(|w| w.name == n)
            .unwrap_or_else(|| panic!("workload {n} not found"))
    };

    let mut json_levels = Vec::new();
    let mut hit_rates = Vec::new();
    let mut shed_rates = Vec::new();

    for (li, &load) in loads.iter().enumerate() {
        // Fresh engine per level so levels are independent and individually
        // reproducible.
        let (mut engine, tables) = union_engine(&tpch, &clicks, target_gb);

        // Solo baselines: each shape once, alone, fault-free — the deadline
        // yardstick and the oracle expectation.
        let mut shapes = Vec::new();
        for name in mix_names {
            let w = source(name);
            let plan = engine.plan(&w.sql).expect("plan");
            let expected = oracle_execute(&plan, &tables).expect("oracle").rows;
            let translation = engine
                .translate_tagged(&w.sql, Strategy::YSmart, &format!("solo{li}-{name}"))
                .expect("translate solo");
            let chain = engine.chain_for(&translation).expect("chain solo");
            let outcome = run_chain(&mut engine.cluster, &chain).expect("solo run");
            let rows = engine.decode_output(&translation).expect("solo decode");
            assert!(
                rows_approx_equal(&rows, &expected, w.ordered),
                "{name}: solo run disagrees with the oracle"
            );
            shapes.push(Shape {
                name,
                sql: w.sql.clone(),
                ordered: w.ordered,
                expected,
                solo_s: outcome.metrics.total_s(),
            });
        }
        let mean_solo: f64 = shapes.iter().map(|s| s.solo_s).sum::<f64>() / shapes.len() as f64;

        // Now the faults: stragglers, node loss and corruption, recovered
        // by a jittered retry policy so co-failing chains don't retry in
        // lockstep.
        let level_seed = 0xF16_0000 + li as u64;
        let cfg = &mut engine.cluster.config;
        cfg.node_failures = Some(NodeFailureModel {
            probability: 0.02,
            seed: level_seed ^ 0x0DE5,
        });
        cfg.stragglers = Some(StragglerModel {
            probability: 0.05,
            slowdown: 4.0,
            speculative: true,
            seed: level_seed ^ 0x57A6,
        });
        cfg.corruption = Some(CorruptionModel::uniform(1e-4, level_seed ^ 0xC042));
        cfg.skip_bad_records = u64::MAX;
        cfg.retry = Some(RetryPolicy {
            jitter: 0.5,
            ..RetryPolicy::default()
        });

        // The request stream: seeded exponential inter-arrivals at
        // `load × max_running / mean_solo` chains per second, shapes and
        // tenants drawn deterministically.
        let rate = load * MAX_RUNNING as f64 / mean_solo;
        let mut submit_s = 0.0;
        let mut requests = Vec::with_capacity(per_load);
        let mut translations = Vec::with_capacity(per_load);
        for i in 0..per_load {
            let rseed = mix(level_seed ^ (i as u64) << 16);
            submit_s += -(1.0 - unit(rseed ^ 1)).ln() / rate;
            let shape = &shapes[(mix(rseed ^ 2) as usize) % shapes.len()];
            let tenant = (mix(rseed ^ 3) as usize) % 4;
            let label = format!("t{tenant}/{}#{i}", shape.name);
            let translation = engine
                .translate_tagged(&shape.sql, Strategy::YSmart, &format!("L{li}r{i}"))
                .expect("translate request");
            let chain = engine.chain_for(&translation).expect("chain request");
            requests.push(QueryRequest {
                tenant: format!("tenant-{tenant}"),
                label,
                chain,
                seed: rseed,
                deadline_s: Some(DEADLINE_FACTOR * shape.solo_s),
                submit_s,
            });
            translations.push((translation, shape));
        }

        let tenants_hit = requests
            .iter()
            .map(|r| r.tenant.clone())
            .collect::<std::collections::BTreeSet<_>>();
        assert_eq!(tenants_hit.len(), 4, "the mix must span all four tenants");

        let sched = SchedulerConfig {
            max_running: MAX_RUNNING,
            tenants: (0..4)
                .map(|t| {
                    TenantSpec::new(format!("tenant-{t}"), 5, [16, 12, 8, 4][t])
                        .weight([4, 2, 1, 1][t])
                })
                .collect(),
            // Trace the first level only; the merged trace of hundreds of
            // chains exists to be validated, not stored.
            trace: li == 0,
            drain_at_s: None,
        };
        let outcome = run_workload(&mut engine.cluster, &sched, requests);
        assert_eq!(
            outcome.reports.len(),
            per_load,
            "every submitted query must get a typed disposition"
        );
        if let Some(trace) = &outcome.trace {
            let stats = validate_chrome_trace(&trace.to_chrome_json())
                .expect("workload trace must be valid Chrome JSON");
            assert!(stats.events > 0, "workload trace must be non-empty");
        }

        // Tally dispositions; verify every completed chain's rows.
        let (mut completed, mut cancelled, mut shed, mut failed) = (0usize, 0, 0, 0);
        let mut latencies = Vec::new();
        for r in &outcome.reports {
            match &r.disposition {
                Disposition::Completed(_) => {
                    completed += 1;
                    latencies.push(r.latency_s());
                    let (translation, shape) = &translations[r.index];
                    let rows = engine.decode_output(translation).expect("decode completed");
                    assert!(
                        rows_approx_equal(&rows, &shape.expected, shape.ordered),
                        "{}: completed chain disagrees with the oracle",
                        r.label
                    );
                }
                Disposition::DeadlineCancelled(_) => cancelled += 1,
                Disposition::Shed(_) => shed += 1,
                Disposition::Failed(f) => {
                    failed += 1;
                    assert!(
                        !f.metrics.jobs.is_empty() || f.metrics.failed_attempt_s > 0.0,
                        "{}: a failed chain must report partial metrics",
                        r.label
                    );
                }
            }
        }
        assert!(completed > 0, "load {load}: at least one chain completes");
        latencies.sort_by(f64::total_cmp);
        let p50 = quantile(&latencies, 0.50);
        let p99 = quantile(&latencies, 0.99);
        let hit_rate = completed as f64 / per_load as f64;
        let shed_rate = shed as f64 / per_load as f64;
        hit_rates.push(hit_rate);
        shed_rates.push(shed_rate);

        emit("");
        emit(&format!(
            "--- load {load:.1}x ({per_load} queries, mean solo {mean_solo:.0}s) ---"
        ));
        emit(&format!(
            "  completed {completed}  deadline-cancelled {cancelled}  shed {shed}  failed {failed}"
        ));
        emit(&format!(
            "  latency p50 {p50:.0}s  p99 {p99:.0}s  hit-rate {:.0}%  shed-rate {:.0}%",
            hit_rate * 100.0,
            shed_rate * 100.0
        ));

        json_levels.push(format!(
            concat!(
                "{{\"load\":{},\"queries\":{},\"completed\":{},\"cancelled\":{},",
                "\"shed\":{},\"failed\":{},\"p50_s\":{:.2},\"p99_s\":{:.2},",
                "\"hit_rate\":{:.4},\"shed_rate\":{:.4}}}"
            ),
            load, per_load, completed, cancelled, shed, failed, p50, p99, hit_rate, shed_rate
        ));
    }

    emit("");
    emit("Load up, service down: overload degrades to typed sheds and deadline");
    emit("cancellations — never to a hang, and never to an unverified result.");
    assert!(
        hit_rates[0] >= HIT_RATE_FLOOR,
        "hit-rate at the lowest load ({:.2}) must clear the floor ({HIT_RATE_FLOOR})",
        hit_rates[0]
    );
    assert!(
        hit_rates[0] >= *hit_rates.last().expect("levels") - 1e-9,
        "hit-rate must not improve under overload"
    );

    let json = format!(
        concat!(
            "{{\"figure\":\"workload\",\"target_gb\":{},\"max_running\":{},",
            "\"deadline_factor\":{},\"queries\":[{}],\"levels\":[{}]}}\n"
        ),
        target_gb,
        MAX_RUNNING,
        DEADLINE_FACTOR,
        mix_names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(","),
        json_levels.join(",")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/workload.txt", &report).expect("write results/workload.txt");
    std::fs::write("results/workload.json", json).expect("write results/workload.json");
    println!("\nwrote results/workload.txt and results/workload.json");
}
