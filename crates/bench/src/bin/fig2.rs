//! Fig. 2(b) — the motivating performance gap: Hive vs a hand-coded
//! MapReduce program on the simple aggregation Q-AGG (comparable times,
//! thanks to Hive's map-side hash aggregation) and on the click-stream
//! sessionization query Q-CSA (hand-coded ≈ 3× faster).

use ysmart_bench::{execute_verified, FigRow};
use ysmart_core::Strategy;
use ysmart_datagen::ClicksSpec;
use ysmart_mapred::ClusterConfig;
use ysmart_queries::clicks_workloads;

fn main() {
    let workloads = clicks_workloads(&ClicksSpec {
        users: 120,
        clicks_per_user: 40,
        seed: 2024,
        ..ClicksSpec::default()
    });
    let config = ClusterConfig::small_local();
    let target_gb = 20.0;

    println!("=== Fig. 2(b): Hive vs hand-coded, 20 GB click stream ===");
    for w in &workloads {
        println!("-- {} --", w.name);
        let mut rows = Vec::new();
        for (label, strategy) in [
            ("Hive", Strategy::Hive),
            ("hand-coded", Strategy::HandCoded),
        ] {
            let result = execute_verified(w, strategy, &config, target_gb)
                .map(|o| o.total_s())
                .map_err(|e| e.to_string());
            rows.push(FigRow {
                label: label.to_string(),
                result,
            });
        }
        let ratio = match (&rows[0].result, &rows[1].result) {
            (Ok(h), Ok(c)) => format!("  (Hive / hand-coded = {:.2}x)", h / c),
            _ => String::new(),
        };
        for r in &rows {
            match &r.result {
                Ok(s) => println!("  {:<12} {:>8.1}s", r.label, s),
                Err(e) => println!("  {:<12} DNF ({e})", r.label),
            }
        }
        println!("{ratio}");
    }
}
