//! Fault-tolerance figure — recovery cost under node loss, YSmart vs Hive.
//!
//! Not a figure from the paper: the paper's §VII runs on healthy clusters.
//! This harness measures what the translation strategies pay when nodes
//! die mid-query. The mechanism favouring YSmart is the same one behind
//! every paper figure — fewer jobs. A node death costs a job re-executed
//! map tasks, shuffle re-fetches, and possibly a whole-job retry with
//! backoff; a chain recovers from its checkpoint (finished outputs stay in
//! HDFS), so a longer chain both exposes more jobs to failure and pays
//! more scheduler round-trips to crawl back.
//!
//! Every run is verified against the relational oracle: faults may change
//! simulated time, never answers. Results are averaged over seeds and
//! written to `results/faults.txt`. Pass `--smoke` for a reduced sweep
//! (CI-sized: fewer rates/seeds, smaller scale) that still verifies every
//! run against the oracle.

use ysmart_bench::{execute_verified, fmt_secs};
use ysmart_core::{FaultOptions, Strategy, YSmart};
use ysmart_datagen::ClicksSpec;
use ysmart_mapred::{ClusterConfig, RetryPolicy};
use ysmart_queries::clicks_workloads;

const RATES: [f64; 4] = [0.0, 0.1, 0.25, 0.5];
const SMOKE_RATES: [f64; 2] = [0.0, 0.25];
const SEEDS: u64 = 5;
const TARGET_GB: f64 = 10.0;

struct Cell {
    total_s: f64,
    recovery_s: f64,
    retries: usize,
    reexecuted: usize,
    nodes_lost: usize,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rates, seeds, target_gb): (&[f64], u64, f64) = if smoke {
        (&SMOKE_RATES, 2, 1.0)
    } else {
        (&RATES, SEEDS, TARGET_GB)
    };
    let mut report = String::new();
    let mut emit = |line: &str| {
        println!("{line}");
        report.push_str(line);
        report.push('\n');
    };

    emit("=== Recovery cost under node failures (not in the paper) ===");
    emit(&format!(
        "q-csa, {target_gb} GB, 11-node EC2 cluster; averages over {seeds} seeds"
    ));

    let clicks = clicks_workloads(&ClicksSpec {
        users: 60,
        clicks_per_user: 30,
        seed: 2024,
        ..ClicksSpec::default()
    });
    let w = clicks.iter().find(|w| w.name == "q-csa").expect("workload");

    for (sys, strategy) in [("YSmart", Strategy::YSmart), ("Hive", Strategy::Hive)] {
        let jobs = {
            let engine = YSmart::new(w.catalog.clone(), ClusterConfig::ec2(10));
            engine
                .plan(&w.sql)
                .and_then(|p| ysmart_core::translate_plan(&p, strategy, w.name))
                .map(|t| t.job_count())
                .expect("translation")
        };
        emit(&format!("--- {sys} ({jobs} jobs) ---"));
        emit("  p(node dies)      total   recovery  retries  re-exec  nodes lost");
        let mut baseline = None;
        for rate in rates.iter().copied() {
            let mut acc = Cell {
                total_s: 0.0,
                recovery_s: 0.0,
                retries: 0,
                reexecuted: 0,
                nodes_lost: 0,
            };
            for seed in 0..seeds {
                let mut config = ClusterConfig::ec2(10);
                let mut faults = if rate > 0.0 {
                    FaultOptions::injected(rate, seed)
                } else {
                    FaultOptions::default()
                };
                // The sweep must finish even on unlucky seeds, and a gentle
                // backoff keeps the figure about re-execution cost rather
                // than the exponential backoff curve.
                if faults.retry.is_some() {
                    faults.retry = Some(RetryPolicy {
                        max_retries: 24,
                        backoff_base_s: 10.0,
                        backoff_factor: 1.5,
                        ..RetryPolicy::default()
                    });
                }
                faults.apply(&mut config);
                let out =
                    execute_verified(w, strategy, &config, target_gb).expect("verified execution");
                acc.total_s += out.total_s();
                acc.recovery_s += out.metrics.recovery_s();
                acc.retries += out.metrics.retries;
                acc.reexecuted += out.metrics.total_reexecuted_tasks();
                acc.nodes_lost += out.metrics.jobs.iter().map(|j| j.nodes_lost).sum::<usize>();
            }
            let n = seeds as f64;
            let overhead = baseline
                .map(|b: f64| {
                    format!(
                        "  (+{:.0}% vs healthy)",
                        (acc.total_s / n / b - 1.0) * 100.0
                    )
                })
                .unwrap_or_default();
            if rate == 0.0 {
                baseline = Some(acc.total_s / n);
            }
            emit(&format!(
                "  p={:<12.2}{}  {}  {:>7.1}  {:>7.1}  {:>10.1}{}",
                rate,
                fmt_secs(acc.total_s / n),
                fmt_secs(acc.recovery_s / n),
                acc.retries as f64 / n,
                acc.reexecuted as f64 / n,
                acc.nodes_lost as f64 / n,
                overhead,
            ));
        }
    }

    emit("");
    emit("All runs verified against the relational oracle: node failures");
    emit("changed simulated time only, never a single result row.");

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/faults.txt", &report).expect("write results/faults.txt");
    println!("\nwrote results/faults.txt");
}
