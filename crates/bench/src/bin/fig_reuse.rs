//! Cross-query result-reuse figure — hit rate, avoided work and real
//! wall-clock vs cache capacity.
//!
//! The ReStore companion experiment: production SQL-on-MapReduce workloads
//! repeat queries (and share sub-jobs) heavily, so materializing committed
//! job outputs and fast-forwarding later chains whose fingerprints hit the
//! cache trades cheap storage for recomputation. This harness replays a
//! repeated stream of the evaluation queries (Q17, Q18, the Q21 subtree,
//! Q-AGG, Q-CSA) through the multi-tenant scheduler at several cache
//! capacities — including capacity 0, which must be *bit-identical* to
//! running with no cache at all — and reports, per capacity: cache
//! hits/misses/evictions, simulated work avoided, and the real wall-clock
//! of the run (reused jobs skip actual map/reduce execution, so the
//! translator process itself gets faster, not just the simulated cluster).
//!
//! Every completed chain's rows are verified against the relational
//! oracle, and the largest-capacity run is required to be bit-identical
//! across `exec_threads` 1, 4 and auto.
//!
//! Results go to `results/reuse.txt` and `results/reuse.json`. Pass
//! `--smoke` for the CI-sized run; it asserts the same gates (hit rate
//! positive, capacity-0 ≡ no-cache) on a smaller stream.

use std::collections::BTreeMap;
use std::time::Instant;

use ysmart_core::{Strategy, YSmart};
use ysmart_datagen::{clicks_catalog, tpch_catalog, ClicksSpec, TpchSpec};
use ysmart_mapred::scheduler::run_workload_reusing;
use ysmart_mapred::{
    run_workload, ClusterConfig, Disposition, QueryRequest, ReuseCache, ReuseConfig, ReuseStats,
    SchedulerConfig, TenantSpec, WorkloadReport,
};
use ysmart_plan::Catalog;
use ysmart_queries::{
    clicks_workloads, oracle_execute, rows_approx_equal, tpch_workloads, Workload,
};
use ysmart_rel::codec::encode_line;
use ysmart_rel::Row;

/// Cache capacities swept, in bytes of materialized output. 0 is the
/// disabled baseline the CI identity gate pins; the middle level is small
/// enough to churn; the last fits the whole working set.
const CAPACITIES: [u64; 3] = [0, 4 * 1024, 64 * 1024 * 1024];
const QUERIES: usize = 30;
const SMOKE_QUERIES: usize = 12;
const MAX_RUNNING: usize = 2;

/// SplitMix64: the bench's only randomness, fully determined by the seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds one engine holding all base tables (TPC-H + clicks, disjoint
/// names), scaled to `target_gb`.
fn union_engine(
    tpch: &[Workload],
    clicks: &[Workload],
    target_gb: f64,
    threads: Option<usize>,
) -> (YSmart, BTreeMap<String, Vec<Row>>) {
    let mut catalog = Catalog::new();
    for (name, schema) in tpch_catalog().iter() {
        catalog.add_table(name, schema.clone());
    }
    for (name, schema) in clicks_catalog().iter() {
        catalog.add_table(name, schema.clone());
    }
    let mut config = ClusterConfig::ec2(10);
    config.exec_threads = threads;
    let mut engine = YSmart::new(catalog, config);
    let mut tables: BTreeMap<String, Vec<Row>> = BTreeMap::new();
    for (name, rows) in tpch[0].tables.iter().chain(clicks[0].tables.iter()) {
        engine.load_table(name, rows).expect("load base table");
        tables.insert((*name).to_string(), rows.clone());
    }
    let real_bytes = engine.cluster.hdfs.total_bytes().max(1);
    engine.cluster.config.size_multiplier = (target_gb * 1e9) / real_bytes as f64;
    (engine, tables)
}

/// One measured run of the repeated-query stream.
struct RunResult {
    /// Canonical per-query lines: label, disposition, exact timing bits,
    /// reuse count and result rows. Equal vectors ⇒ bit-identical runs.
    digest: Vec<String>,
    wall_ms: f64,
    stats: Option<ReuseStats>,
    jobs_reused: usize,
    completed: usize,
}

/// Replays the stream on a fresh engine: `capacity: None` runs the plain
/// (cache-less) scheduler; `Some(bytes)` runs with a reuse cache of that
/// size. Deterministic given (`per`, `threads`, `capacity`).
fn run_once(
    tpch: &[Workload],
    clicks: &[Workload],
    target_gb: f64,
    per: usize,
    threads: Option<usize>,
    capacity: Option<u64>,
) -> RunResult {
    let (mut engine, tables) = union_engine(tpch, clicks, target_gb, threads);
    let mix_names = ["q17", "q18", "q21-subtree", "q-agg", "q-csa"];
    let source = |n: &str| {
        tpch.iter()
            .chain(clicks.iter())
            .find(|w| w.name == n)
            .unwrap_or_else(|| panic!("workload {n} not found"))
    };

    // Oracle expectations, once per shape.
    let mut expected = Vec::new();
    for name in mix_names {
        let w = source(name);
        let plan = engine.plan(&w.sql).expect("plan");
        expected.push((w, oracle_execute(&plan, &tables).expect("oracle").rows));
    }

    // The stream cycles through the shapes, so after the first lap every
    // query is a repeat of an earlier one.
    let mut requests = Vec::with_capacity(per);
    let mut translations = Vec::with_capacity(per);
    for i in 0..per {
        let (w, exp) = &expected[i % expected.len()];
        let translation = engine
            .translate_tagged(&w.sql, Strategy::YSmart, &format!("r{i}"))
            .expect("translate request");
        let chain = engine.chain_for(&translation).expect("chain request");
        requests.push(QueryRequest {
            tenant: "analytics".into(),
            label: format!("{}#{i}", w.name),
            chain,
            seed: mix(0x2E5E_0000 ^ i as u64),
            deadline_s: None,
            submit_s: i as f64,
        });
        translations.push((translation, w.name, w.ordered, exp.clone()));
    }

    let sched = SchedulerConfig {
        max_running: MAX_RUNNING,
        tenants: vec![TenantSpec::new("analytics", per, 8)],
        trace: false,
        drain_at_s: None,
    };

    let started = Instant::now();
    let (report, stats): (WorkloadReport, Option<ReuseStats>) = match capacity {
        None => (run_workload(&mut engine.cluster, &sched, requests), None),
        Some(bytes) => {
            let mut cache = ReuseCache::new(ReuseConfig::with_capacity(bytes));
            let (report, _) =
                run_workload_reusing(&mut engine.cluster, &sched, requests, None, &[], &mut cache);
            let stats = report.reuse;
            (report, stats)
        }
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut digest = Vec::with_capacity(per);
    let mut completed = 0usize;
    let mut jobs_reused = 0usize;
    for r in &report.reports {
        let (translation, name, ordered, exp) = &translations[r.index];
        jobs_reused += r.jobs_reused;
        let rows_line = match &r.disposition {
            Disposition::Completed(_) => {
                completed += 1;
                let rows = engine.decode_output(translation).expect("decode completed");
                assert!(
                    rows_approx_equal(&rows, exp, *ordered),
                    "{}: completed chain disagrees with the oracle",
                    r.label
                );
                rows.iter().map(encode_line).collect::<Vec<_>>().join(",")
            }
            other => format!("{other:?}"),
        };
        // `{}` on f64 prints the shortest roundtrip form: equal strings
        // mean equal bits.
        digest.push(format!(
            "{} [{name}] admitted={:?} done={} reused={} rows={rows_line}",
            r.label, r.admitted_s, r.done_s, r.jobs_reused
        ));
    }
    RunResult {
        digest,
        wall_ms,
        stats,
        jobs_reused,
        completed,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (per, target_gb) = if smoke {
        (SMOKE_QUERIES, 0.5)
    } else {
        (QUERIES, 2.0)
    };
    let (tpch_spec, clicks_spec) = if smoke {
        (
            TpchSpec {
                scale: 0.05,
                seed: 2026,
            },
            ClicksSpec {
                users: 15,
                clicks_per_user: 10,
                seed: 2026,
                ..ClicksSpec::default()
            },
        )
    } else {
        (
            TpchSpec {
                scale: 0.2,
                seed: 2026,
            },
            ClicksSpec {
                users: 40,
                clicks_per_user: 20,
                seed: 2026,
                ..ClicksSpec::default()
            },
        )
    };
    let tpch = tpch_workloads(&tpch_spec);
    let clicks = clicks_workloads(&clicks_spec);

    let mut report = String::new();
    let mut emit = |line: &str| {
        println!("{line}");
        report.push_str(line);
        report.push('\n');
    };

    emit("=== Cross-query result reuse: hit rate, avoided work, wall-clock vs capacity ===");
    emit(&format!(
        "{per} queries cycling 5 shapes, {MAX_RUNNING} chain slots, {target_gb} GB scaled data"
    ));

    // No-cache baseline: the yardstick for both the capacity-0 identity
    // gate and the wall-clock comparison.
    let baseline = run_once(&tpch, &clicks, target_gb, per, Some(1), None);
    assert!(baseline.completed > 0, "the baseline must answer queries");
    emit("");
    emit(&format!(
        "no cache:          completed {:>3}, wall {:>7.0}ms",
        baseline.completed, baseline.wall_ms
    ));

    let mut json_levels = Vec::new();
    let mut runs = Vec::new();
    for &capacity in &CAPACITIES {
        let run = run_once(&tpch, &clicks, target_gb, per, Some(1), Some(capacity));
        let stats = run.stats.expect("cache was in force");
        assert_eq!(
            run.completed, baseline.completed,
            "capacity {capacity}: the cache must not change dispositions"
        );
        emit(&format!(
            "capacity {:>9}: completed {:>3}, wall {:>7.0}ms, hits {:>3}, misses {:>3}, \
             evictions {:>3}, reused jobs {:>3}, avoided {:>6.0}s simulated",
            capacity,
            run.completed,
            run.wall_ms,
            stats.hits,
            stats.misses,
            stats.evictions,
            run.jobs_reused,
            stats.reused_work_s,
        ));
        json_levels.push(format!(
            concat!(
                "{{\"capacity_bytes\":{},\"completed\":{},\"wall_ms\":{:.2},",
                "\"hits\":{},\"misses\":{},\"evictions\":{},\"insertions\":{},",
                "\"integrity_failures\":{},\"jobs_reused\":{},\"hit_rate\":{:.4},",
                "\"reused_work_s\":{:.2},\"bytes_cached\":{}}}"
            ),
            capacity,
            run.completed,
            run.wall_ms,
            stats.hits,
            stats.misses,
            stats.evictions,
            stats.insertions,
            stats.integrity_failures,
            run.jobs_reused,
            stats.hit_rate(),
            stats.reused_work_s,
            stats.bytes_cached,
        ));
        runs.push(run);
    }

    // Gate 1: a capacity-0 cache is *bit-identical* to no cache at all —
    // same labels, dispositions, timing bits and rows.
    assert_eq!(
        runs[0].digest, baseline.digest,
        "capacity 0 must be byte-identical to the cache-less scheduler"
    );
    assert_eq!(runs[0].jobs_reused, 0, "capacity 0 must reuse nothing");

    // Gate 2: the big cache actually hits, reuses whole jobs and banks
    // simulated work.
    let big = runs.last().expect("capacities swept");
    let big_stats = big.stats.expect("cache in force");
    assert!(
        big_stats.hit_rate() > 0.0 && big.jobs_reused > 0,
        "the repeated stream must produce cache hits"
    );
    assert!(
        big_stats.reused_work_s > 0.0,
        "hits must account avoided simulated work"
    );

    // Gate 3: thread-count bit-identity of the largest-capacity run.
    let cap = *CAPACITIES.last().expect("capacities");
    for threads in [Some(4), None] {
        let rerun = run_once(&tpch, &clicks, target_gb, per, threads, Some(cap));
        assert_eq!(
            rerun.digest, big.digest,
            "reuse workload differs under exec_threads={threads:?}"
        );
        assert_eq!(
            format!("{:?}", rerun.stats),
            format!("{:?}", big.stats),
            "cache counters differ under exec_threads={threads:?}"
        );
    }

    emit("");
    emit(&format!(
        "hit rate {:.0}% at {} bytes: {} of {} jobs fast-forwarded, {:.0} simulated",
        big_stats.hit_rate() * 100.0,
        cap,
        big.jobs_reused,
        big.jobs_reused + big_stats.misses as usize,
        big_stats.reused_work_s,
    ));
    emit("seconds of map/reduce work never re-executed; capacity 0 reproduced the");
    emit("cache-less run bit for bit.");
    if !smoke && big.wall_ms < baseline.wall_ms {
        emit(&format!(
            "wall-clock: {:.0}ms -> {:.0}ms ({:.0}% of baseline)",
            baseline.wall_ms,
            big.wall_ms,
            100.0 * big.wall_ms / baseline.wall_ms
        ));
    }

    let json = format!(
        concat!(
            "{{\"figure\":\"reuse\",\"target_gb\":{},\"queries\":{},",
            "\"baseline_wall_ms\":{:.2},\"levels\":[{}]}}\n"
        ),
        target_gb,
        per,
        baseline.wall_ms,
        json_levels.join(",")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/reuse.txt", &report).expect("write results/reuse.txt");
    std::fs::write("results/reuse.json", json).expect("write results/reuse.json");
    println!("\nwrote results/reuse.txt and results/reuse.json");
}
