//! Fig. 11 — Amazon EC2: 11-node and 101-node clusters, Q17/Q18/Q21 with
//! map-output compression enabled (`c`) and disabled (`nc`), plus Q-CSA on
//! the 11-node cluster (§VII-E).
//!
//! Paper findings this harness reproduces:
//! * YSmart outperforms Hive in all cases (max 297% on Q21 @ 101 nodes);
//! * near-linear scaling: times barely change from 11 to 101 nodes when
//!   the data grows 10× with the cluster;
//! * compression *degrades* performance in this isolated cluster;
//! * Hive-with-compression exceeds one hour on Q21 @ 101 nodes (DNF);
//! * Q-CSA: YSmart ≈ 487% over Hive, ≈ 840% over Pig.

use ysmart_bench::{execute_verified, FigRow};
use ysmart_core::Strategy;
use ysmart_datagen::{ClicksSpec, TpchSpec};
use ysmart_mapred::{ClusterConfig, Compression};
use ysmart_queries::{clicks_workloads, tpch_workloads};

fn main() {
    println!("=== Fig. 11: Amazon EC2 clusters ===");
    let tpch = tpch_workloads(&TpchSpec {
        scale: 1.0,
        seed: 2024,
    });

    for (workers, target_gb) in [(10, 10.0), (100, 100.0)] {
        println!(
            "--- {}-node cluster, {} GB TPC-H ---",
            workers + 1,
            target_gb
        );
        for name in ["q17", "q18", "q21"] {
            let w = tpch.iter().find(|w| w.name == name).expect("workload");
            let mut rows = Vec::new();
            for (sys, strategy) in [("YSmart", Strategy::YSmart), ("Hive", Strategy::Hive)] {
                // Compression CPU calibrated to the paper's own Q17
                // datapoint (5.93 min → 12.02 min on the 101-node
                // cluster): gzip on an oversubscribed EC2-small vCPU.
                let gzip = Compression {
                    ratio: 0.35,
                    cpu_s_per_gb: 140.0,
                };
                for (mode, compression) in [("nc", None), ("c", Some(gzip))] {
                    let mut config = ClusterConfig::ec2(workers);
                    config.compression = compression;
                    config.time_limit_s = Some(3600.0); // the paper's 1-hour cap
                    let result = execute_verified(w, strategy, &config, target_gb)
                        .map(|o| o.total_s())
                        .map_err(|e| {
                            if e.is_time_limit() {
                                "exceeded one hour".to_string()
                            } else {
                                e.to_string()
                            }
                        });
                    rows.push(FigRow {
                        label: format!("{sys} {mode}"),
                        result,
                    });
                }
            }
            ysmart_bench::print_summary(&format!("{name}:"), &rows);
        }
    }

    println!("--- Fig. 11(d): Q-CSA, 11-node cluster, 20 GB, no compression ---");
    let clicks = clicks_workloads(&ClicksSpec {
        users: 120,
        clicks_per_user: 40,
        seed: 2024,
        ..ClicksSpec::default()
    });
    let w = clicks.iter().find(|w| w.name == "q-csa").expect("workload");
    let config = ClusterConfig::ec2(10);
    let mut rows = Vec::new();
    for (sys, strategy) in [
        ("YSmart", Strategy::YSmart),
        ("Hive", Strategy::Hive),
        ("Pig", Strategy::Pig),
    ] {
        let result = execute_verified(w, strategy, &config, 20.0)
            .map(|o| o.total_s())
            .map_err(|e| e.to_string());
        rows.push(FigRow {
            label: sys.to_string(),
            result,
        });
    }
    ysmart_bench::print_summary("q-csa:", &rows);
}
