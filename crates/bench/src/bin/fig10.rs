//! Fig. 10 — small local cluster: YSmart vs Hive vs Pig vs the ideal
//! parallel PostgreSQL on Q17/Q18/Q21 (10 GB TPC-H) and Q-CSA (20 GB
//! clicks), with per-job breakdowns (§VII-D).
//!
//! Paper shape: YSmart beats Hive by 258%/190%/252%/266%; Pig trails Hive
//! and cannot finish Q-CSA (intermediate results exceed the test disk);
//! the DBMS wins the DSS queries but not the click-stream query.
//!
//! Flags:
//!
//! * `--trace [path]` — record structured execution traces for every run
//!   and write one merged Chrome-trace JSON (default
//!   `results/fig10_trace.json`), loadable in Perfetto / `chrome://tracing`.
//! * `--smoke` — a seconds-long subset (Q17 only, tiny scale) for CI.
//! * `--format text|columnar` — storage/shuffle format (default text).

use ysmart_bench::{execute_verified_traced, pgsql_seconds, print_breakdown, FigRow};
use ysmart_core::Strategy;
use ysmart_datagen::{ClicksSpec, TpchSpec};
use ysmart_mapred::{validate_chrome_trace, ClusterConfig, DataFormat, Trace};
use ysmart_queries::{clicks_workloads, tpch_workloads, Workload};

fn run_query(w: &Workload, config: &ClusterConfig, target_gb: f64, master: &mut Option<Trace>) {
    println!("-- {} ({} GB) --", w.name, target_gb);
    let mut rows = Vec::new();
    for (label, strategy) in [
        ("YSmart", Strategy::YSmart),
        ("Hive", Strategy::Hive),
        ("Pig", Strategy::Pig),
    ] {
        match execute_verified_traced(w, strategy, config, target_gb, master.is_some()) {
            Ok((out, trace)) => {
                print_breakdown(&format!("{label} ({} jobs)", out.jobs), &out);
                if let (Some(master), Some(trace)) = (master.as_mut(), trace) {
                    // The trace's extent must reconcile with the metrics it
                    // summarises — a drifting exporter is worse than none.
                    let total = out.total_s();
                    let drift = (trace.max_end_s() - total).abs();
                    assert!(
                        drift <= 1e-6 * total.max(1.0),
                        "{} {label}: trace extent {:.6}s vs metrics total {:.6}s",
                        w.name,
                        trace.max_end_s(),
                        total
                    );
                    master.absorb(&format!("{}-{label}", w.name), trace);
                }
                rows.push(FigRow {
                    label: label.into(),
                    result: Ok(out.total_s()),
                });
            }
            Err(e) => rows.push(FigRow {
                label: label.into(),
                result: Err(if e.is_disk_full() {
                    "intermediate results exceed local disk".into()
                } else {
                    e.to_string()
                }),
            }),
        }
    }
    match pgsql_seconds(w, target_gb) {
        Ok(s) => rows.push(FigRow {
            label: "pgsql (ideal)".into(),
            result: Ok(s),
        }),
        Err(e) => rows.push(FigRow {
            label: "pgsql (ideal)".into(),
            result: Err(e.to_string()),
        }),
    }
    ysmart_bench::print_summary("  totals:", &rows);
}

struct Options {
    smoke: bool,
    trace_path: Option<String>,
    format: DataFormat,
}

fn parse_args() -> Options {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        smoke: false,
        trace_path: None,
        format: DataFormat::Text,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => opts.smoke = true,
            "--trace" => {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    i += 1;
                    opts.trace_path = Some(argv[i].clone());
                } else {
                    opts.trace_path = Some("results/fig10_trace.json".into());
                }
            }
            "--format" => {
                i += 1;
                opts.format = match argv.get(i).map(String::as_str) {
                    Some("text") => DataFormat::Text,
                    Some("columnar") => DataFormat::Columnar,
                    other => {
                        eprintln!(
                            "--format expects `text` or `columnar`, got {:?}",
                            other.unwrap_or("<none>")
                        );
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!(
                    "unknown argument: {other} \
                     (expected --smoke, --trace [path], and/or --format text|columnar)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

fn write_trace(master: &Trace, path: &str) {
    let json = master.to_chrome_json();
    // Self-check before writing: the exporter's output must parse as
    // Chrome-trace JSON and contain both phases' spans.
    let stats = validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("exported trace is not valid Chrome-trace JSON: {e}"));
    assert!(
        stats.span_cats.get("map").copied().unwrap_or(0) >= 1,
        "trace has no map spans"
    );
    assert!(
        stats.span_cats.get("reduce").copied().unwrap_or(0) >= 1,
        "trace has no reduce spans"
    );
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create trace output directory");
        }
    }
    std::fs::write(path, &json).expect("write trace file");
    println!(
        "trace: {} events ({} spans) across {} processes -> {path}",
        stats.events, stats.spans, stats.processes
    );
    println!("       open in Perfetto (ui.perfetto.dev) or chrome://tracing");
}

fn main() {
    let opts = parse_args();
    println!(
        "=== Fig. 10: small local cluster ({} format) ===",
        match opts.format {
            DataFormat::Text => "text",
            DataFormat::Columnar => "columnar",
        }
    );
    let mut config = ClusterConfig::small_local();
    config.data_format = opts.format;
    let mut master = opts.trace_path.as_ref().map(|_| Trace::new());

    if opts.smoke {
        // CI-sized subset: one query at a tiny scale exercises the whole
        // pipeline (and the tracing path) in seconds.
        let tpch = tpch_workloads(&TpchSpec {
            scale: 0.05,
            seed: 2024,
        });
        let w = tpch.iter().find(|w| w.name == "q17").expect("workload");
        run_query(w, &config, 0.1, &mut master);
    } else {
        let tpch = tpch_workloads(&TpchSpec {
            scale: 1.0,
            seed: 2024,
        });
        for name in ["q17", "q18", "q21"] {
            let w = tpch.iter().find(|w| w.name == name).expect("workload");
            run_query(w, &config, 10.0, &mut master);
        }

        // Q-CSA on 20 GB; the local node's 450 GB disk is the paper's limit
        // that Pig's bulkier intermediates overflow.
        let clicks = clicks_workloads(&ClicksSpec {
            users: 120,
            clicks_per_user: 40,
            seed: 2024,
            ..ClicksSpec::default()
        });
        let mut csa_config = config.clone();
        csa_config.disk_capacity_mb = 65_000.0; // headroom Hive fits in, Pig does not
        let w = clicks.iter().find(|w| w.name == "q-csa").expect("workload");
        run_query(w, &csa_config, 20.0, &mut master);
    }

    if let (Some(master), Some(path)) = (&master, &opts.trace_path) {
        write_trace(master, path);
    }
}
