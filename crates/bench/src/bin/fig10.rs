//! Fig. 10 — small local cluster: YSmart vs Hive vs Pig vs the ideal
//! parallel PostgreSQL on Q17/Q18/Q21 (10 GB TPC-H) and Q-CSA (20 GB
//! clicks), with per-job breakdowns (§VII-D).
//!
//! Paper shape: YSmart beats Hive by 258%/190%/252%/266%; Pig trails Hive
//! and cannot finish Q-CSA (intermediate results exceed the test disk);
//! the DBMS wins the DSS queries but not the click-stream query.

use ysmart_bench::{execute_verified, pgsql_seconds, print_breakdown, FigRow};
use ysmart_core::Strategy;
use ysmart_datagen::{ClicksSpec, TpchSpec};
use ysmart_mapred::ClusterConfig;
use ysmart_queries::{clicks_workloads, tpch_workloads, Workload};

fn run_query(w: &Workload, config: &ClusterConfig, target_gb: f64) {
    println!("-- {} ({} GB) --", w.name, target_gb);
    let mut rows = Vec::new();
    for (label, strategy) in [
        ("YSmart", Strategy::YSmart),
        ("Hive", Strategy::Hive),
        ("Pig", Strategy::Pig),
    ] {
        match execute_verified(w, strategy, config, target_gb) {
            Ok(out) => {
                print_breakdown(&format!("{label} ({} jobs)", out.jobs), &out);
                rows.push(FigRow {
                    label: label.into(),
                    result: Ok(out.total_s()),
                });
            }
            Err(e) => rows.push(FigRow {
                label: label.into(),
                result: Err(if e.is_disk_full() {
                    "intermediate results exceed local disk".into()
                } else {
                    e.to_string()
                }),
            }),
        }
    }
    match pgsql_seconds(w, target_gb) {
        Ok(s) => rows.push(FigRow {
            label: "pgsql (ideal)".into(),
            result: Ok(s),
        }),
        Err(e) => rows.push(FigRow {
            label: "pgsql (ideal)".into(),
            result: Err(e.to_string()),
        }),
    }
    ysmart_bench::print_summary("  totals:", &rows);
}

fn main() {
    println!("=== Fig. 10: small local cluster ===");
    let config = ClusterConfig::small_local();

    let tpch = tpch_workloads(&TpchSpec {
        scale: 1.0,
        seed: 2024,
    });
    for name in ["q17", "q18", "q21"] {
        let w = tpch.iter().find(|w| w.name == name).expect("workload");
        run_query(w, &config, 10.0);
    }

    // Q-CSA on 20 GB; the local node's 450 GB disk is the paper's limit
    // that Pig's bulkier intermediates overflow.
    let clicks = clicks_workloads(&ClicksSpec {
        users: 120,
        clicks_per_user: 40,
        seed: 2024,
        ..ClicksSpec::default()
    });
    let mut csa_config = config.clone();
    csa_config.disk_capacity_mb = 65_000.0; // headroom Hive fits in, Pig does not
    let w = clicks.iter().find(|w| w.name == "q-csa").expect("workload");
    run_query(w, &csa_config, 20.0);
}
