//! §VII-A job counts: how many MapReduce jobs each system generates for
//! each evaluation query — the quantity YSmart minimises.
//!
//! Paper values: Q17 Hive 4 / YSmart 2; Q-CSA Hive 6 / YSmart 2; Q21
//! subtree 5 / 3 (IC+TC only) / 1.

use ysmart_core::{Strategy, YSmart};
use ysmart_datagen::{ClicksSpec, TpchSpec};
use ysmart_mapred::ClusterConfig;
use ysmart_queries::{clicks_workloads, tpch_workloads, Workload};

fn counts(w: &Workload) {
    print!("{:<12}", w.name);
    for strategy in Strategy::all() {
        let mut engine = YSmart::new(w.catalog.clone(), ClusterConfig::default());
        w.load_into(&mut engine)
            .unwrap_or_else(|e| panic!("{}: loading tables failed: {e}", w.name));
        let t = engine
            .translate(&w.sql, strategy)
            .unwrap_or_else(|e| panic!("{}: {strategy} translation failed: {e}", w.name));
        print!(" {:>14}", format!("{strategy}: {}", t.job_count()));
    }
    println!();
}

fn main() {
    println!("=== Job counts per translation strategy (§VII-A) ===");
    for w in tpch_workloads(&TpchSpec {
        scale: 0.05,
        seed: 1,
    }) {
        counts(&w);
    }
    for w in clicks_workloads(&ClicksSpec {
        users: 8,
        clicks_per_user: 12,
        seed: 1,
        ..ClicksSpec::default()
    }) {
        counts(&w);
    }
}
