//! Crash-recovery figure — replay cost and output equivalence vs. kill
//! point.
//!
//! Not a figure from the paper, but the robustness story behind running
//! its workload as a service: a journaled multi-query workload (the
//! click-stream evaluation queries under fault injection) is killed at
//! every point the crash model allows — the workload journal is
//! append-only, so a kill at any instant leaves exactly a byte prefix of
//! the final journal — and recovered. For each kill point the harness
//! asserts the recovered workload is **bit-identical** to the
//! uninterrupted run (dispositions, full metrics, result rows, oracle
//! agreement) and measures the recovery split: jobs fast-forwarded from
//! journaled checkpoints vs. jobs re-executed.
//!
//! Results go to `results/recovery.txt` (report) and
//! `results/recovery.json` (machine-readable). Pass `--smoke` for the CI
//! run: at least three seeded kill points, torn-tail cuts, and a
//! journal-corruption recovery check; `--corruption-smoke` runs only the
//! corruption check (for the fault-injection sweep).

use std::fmt::Write as _;

use ysmart_core::{Strategy, YSmart};
use ysmart_datagen::ClicksSpec;
use ysmart_mapred::journal::{recover, Journal, JournalRecord, JOURNAL_MAGIC};
use ysmart_mapred::scheduler::{run_workload_journaled, run_workload_recovered};
use ysmart_mapred::{
    Cluster, ClusterConfig, Disposition, FailureModel, MapRedError, QueryRequest, RetryPolicy,
    SchedulerConfig, StragglerModel, TenantSpec, WorkloadReport,
};
use ysmart_queries::clicks_workloads;

/// SplitMix64 — the bench's only randomness, fully determined by the seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn spec(smoke: bool) -> ClicksSpec {
    ClicksSpec {
        users: if smoke { 15 } else { 50 },
        clicks_per_user: if smoke { 12 } else { 40 },
        seed: 2025,
        ..ClicksSpec::default()
    }
}

fn cluster_config() -> ClusterConfig {
    ClusterConfig {
        size_multiplier: 5_000.0,
        stragglers: Some(StragglerModel {
            probability: 0.15,
            slowdown: 4.0,
            speculative: true,
            seed: 7,
        }),
        failures: Some(FailureModel {
            probability: 0.05,
            seed: 7 ^ 0xBEEF,
        }),
        retry: Some(RetryPolicy {
            max_retries: 6,
            backoff_base_s: 1.0,
            backoff_factor: 2.0,
            jitter: 0.5,
            ..RetryPolicy::default()
        }),
        ..ClusterConfig::default()
    }
}

fn sched_config() -> SchedulerConfig {
    SchedulerConfig {
        max_running: 2,
        tenants: vec![
            TenantSpec::new("etl", 8, 16).weight(2),
            TenantSpec::new("adhoc", 8, 16),
        ],
        trace: false,
        drain_at_s: None,
    }
}

/// Builds the engine (clicks catalog + data, faults on) and the workload:
/// every click-stream evaluation query, round-robined over two tenants.
fn build(smoke: bool) -> (YSmart, Vec<QueryRequest>) {
    let workloads = clicks_workloads(&spec(smoke));
    let first = workloads.first().expect("click workloads");
    let mut engine = YSmart::new(first.catalog.clone(), cluster_config());
    for (name, rows) in &first.tables {
        engine.load_table(name, rows).expect("load table");
    }
    let mut requests = Vec::new();
    // Two rounds of every query: enough chains to keep both slots busy and
    // give the kill-point sweep several commit boundaries per query shape.
    let rounds: Vec<_> = workloads.iter().chain(workloads.iter()).collect();
    for (i, w) in rounds.into_iter().enumerate() {
        let translation = engine
            .translate_tagged(&w.sql, Strategy::YSmart, &format!("q{i}"))
            .expect("translate");
        let chain = engine.chain_for(&translation).expect("chain");
        requests.push(QueryRequest {
            tenant: if i % 2 == 0 { "etl" } else { "adhoc" }.into(),
            label: format!("{}-{i}", w.name),
            chain,
            seed: mix(100 + i as u64),
            deadline_s: Some(50_000.0),
            submit_s: i as f64,
        });
    }
    (engine, requests)
}

/// Bit-faithful per-query summary (f64 Debug is shortest-roundtrip).
fn summarize(cluster: &Cluster, report: &WorkloadReport) -> Vec<String> {
    report
        .reports
        .iter()
        .map(|r| {
            let rows = match &r.disposition {
                Disposition::Completed(o) => {
                    let mut lines = cluster.hdfs.get(&o.final_output).unwrap().lines.clone();
                    lines.sort();
                    lines.join(",")
                }
                other => format!("{other:?}"),
            };
            format!(
                "{} done={} metrics={:?} rows={rows}",
                r.label,
                r.done_s,
                r.metrics()
            )
        })
        .collect()
}

fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![JOURNAL_MAGIC.len()];
    let mut off = JOURNAL_MAGIC.len();
    while off + 12 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap()) as usize;
        off += 12 + len;
        boundaries.push(off);
    }
    boundaries
}

struct KillPoint {
    cut: usize,
    records: usize,
    torn_bytes: usize,
    jobs_replayed: usize,
    jobs_executed: usize,
    identical: bool,
}

/// Kills at `cut` journal bytes, recovers on a fresh cluster, compares.
fn kill_and_recover(baseline: &[String], bytes: &[u8], cut: usize, smoke: bool) -> KillPoint {
    let recovered = recover(&bytes[..cut]).expect("prefix recovers");
    let (engine, requests) = build(smoke);
    let mut cluster = engine.cluster;
    let (report, stats) = run_workload_recovered(
        &mut cluster,
        &sched_config(),
        requests,
        &recovered.records,
        None,
    );
    KillPoint {
        cut,
        records: recovered.records.len(),
        torn_bytes: recovered.truncated_bytes,
        jobs_replayed: stats.jobs_replayed,
        jobs_executed: stats.jobs_executed,
        identical: summarize(&cluster, &report) == *baseline,
    }
}

/// Journal-corruption recovery: a flipped byte mid-stream must surface as
/// the typed `JournalCorrupt` error (never a panic, never silent wrong
/// records), while a torn tail truncates to a clean record prefix.
fn corruption_check(bytes: &[u8], emit: &mut dyn FnMut(&str)) {
    let boundaries = frame_boundaries(bytes);
    let n_records = recover(bytes).expect("full journal").records.len();
    // Flip a byte inside each of three early frames (past the last frame a
    // flip can masquerade as a torn tail, which is a legal truncation).
    let mut corrupt_seen = 0usize;
    for &b in boundaries.iter().take(3) {
        let mut mutated = bytes.to_vec();
        mutated[b + 14] ^= 0x40;
        match recover(&mutated) {
            Err(MapRedError::JournalCorrupt { offset, .. }) => {
                corrupt_seen += 1;
                emit(&format!(
                    "corruption: flip at byte {} -> typed JournalCorrupt at offset {offset}",
                    b + 14
                ));
            }
            Err(e) => panic!("corruption must be JournalCorrupt, got {e}"),
            Ok(r) => {
                assert!(
                    r.records.len() < n_records,
                    "a flipped byte must never be accepted as-is"
                );
                emit(&format!(
                    "corruption: flip at byte {} -> clean truncation to {} record(s)",
                    b + 14,
                    r.records.len()
                ));
            }
        }
    }
    assert!(
        corrupt_seen > 0,
        "at least one mid-stream flip must be typed corruption"
    );
    // Torn tail: every mid-frame cut truncates to the previous boundary.
    let last = *boundaries.last().unwrap();
    let prev = boundaries[boundaries.len() - 2];
    let torn = recover(&bytes[..last - 3]).expect("torn tail recovers");
    assert_eq!(torn.valid_len, prev, "torn tail truncates to a boundary");
    emit(&format!(
        "torn tail: cut at byte {} -> truncated to {} (clean prefix of {} record(s))",
        last - 3,
        prev,
        torn.records.len()
    ));
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--corruption-smoke");
    let corruption_only = std::env::args().any(|a| a == "--corruption-smoke");

    let mut report = String::new();
    let mut emit = |line: &str| {
        println!("{line}");
        report.push_str(line);
        report.push('\n');
    };

    emit("=== Crash recovery: replay cost and equivalence vs. kill point ===");

    // Uninterrupted baseline, journaled.
    let (engine, requests) = build(smoke);
    let n_queries = requests.len();
    let mut cluster = engine.cluster;
    let mut journal = Journal::in_memory();
    let baseline_report =
        run_workload_journaled(&mut cluster, &sched_config(), requests, &mut journal);
    let baseline = summarize(&cluster, &baseline_report);
    let bytes = journal.bytes().to_vec();
    let total_commits = recover(&bytes)
        .expect("full journal")
        .records
        .iter()
        .filter(|r| matches!(r, JournalRecord::JobDone { .. }))
        .count();
    emit(&format!(
        "workload: {n_queries} queries, {total_commits} job commits, journal {} bytes",
        bytes.len()
    ));

    if corruption_only {
        corruption_check(&bytes, &mut emit);
        println!("corruption-smoke passed");
        return;
    }

    // Kill points: every record boundary in the full run; in smoke, a
    // seeded sample of at least three plus first/last, and torn variants.
    let boundaries = frame_boundaries(&bytes);
    let cuts: Vec<usize> = if smoke {
        let mut cuts = vec![boundaries[0], *boundaries.last().unwrap()];
        for k in 0..3u64 {
            cuts.push(boundaries[1 + (mix(k) as usize) % (boundaries.len() - 1)]);
        }
        // Torn cuts: mid-frame, recover to the previous boundary.
        cuts.push(boundaries[boundaries.len() / 2] + 5);
        cuts.sort_unstable();
        cuts.dedup();
        cuts
    } else {
        boundaries.clone()
    };

    emit(&format!(
        "{:>10} {:>8} {:>6} {:>9} {:>9} {:>10}",
        "kill@byte", "records", "torn", "replayed", "executed", "identical"
    ));
    let mut rows_json = Vec::new();
    for &cut in &cuts {
        let kp = kill_and_recover(&baseline, &bytes, cut, smoke);
        emit(&format!(
            "{:>10} {:>8} {:>6} {:>9} {:>9} {:>10}",
            kp.cut, kp.records, kp.torn_bytes, kp.jobs_replayed, kp.jobs_executed, kp.identical
        ));
        assert!(
            kp.identical,
            "kill at byte {cut}: recovered workload diverged from the uninterrupted run"
        );
        assert_eq!(
            kp.jobs_replayed + kp.jobs_executed,
            total_commits,
            "kill at byte {cut}: recovery wasted or lost work"
        );
        rows_json.push(format!(
            "{{\"kill_byte\":{},\"records\":{},\"torn_bytes\":{},\"jobs_replayed\":{},\"jobs_executed\":{},\"identical\":{}}}",
            kp.cut, kp.records, kp.torn_bytes, kp.jobs_replayed, kp.jobs_executed, kp.identical
        ));
    }
    assert!(cuts.len() >= 3, "sweep needs at least three kill points");
    emit(&format!(
        "all {} kill points recovered bit-identically; replay split covers all {} commits",
        cuts.len(),
        total_commits
    ));

    corruption_check(&bytes, &mut emit);

    let mut json = String::from("{\"kill_points\":[");
    json.push_str(&rows_json.join(","));
    let _ = write!(
        json,
        "],\"queries\":{n_queries},\"job_commits\":{total_commits},\"journal_bytes\":{}}}",
        bytes.len()
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/recovery.txt", &report).expect("write results/recovery.txt");
    std::fs::write("results/recovery.json", &json).expect("write results/recovery.json");
    println!("\nwrote results/recovery.txt and results/recovery.json");
}
