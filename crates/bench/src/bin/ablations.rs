//! Ablations of the design choices DESIGN.md calls out, measured in
//! simulated cluster seconds on the Q21 subtree and Q-CSA (the two queries
//! the paper studies in depth):
//!
//! * Rule 1 only vs Rules 1–4 (already Fig. 9's subject; included for
//!   completeness);
//! * shared scan on/off with merging otherwise identical;
//! * map-side combiner on/off;
//! * reduce-side short-circuiting on/off;
//! * Pig-style value padding.
//!
//! Each configuration is verified against the oracle before its time is
//! reported.

use std::collections::BTreeMap;

use ysmart_core::{compile, CoreError, TranslateOptions, YSmart};
use ysmart_datagen::{ClicksSpec, TpchSpec};
use ysmart_mapred::ClusterConfig;
use ysmart_plan::analyze;
use ysmart_queries::{
    clicks_workloads, oracle_execute, rows_approx_equal, tpch_workloads, Workload,
};
use ysmart_rel::Row;

fn run_with_options(
    w: &Workload,
    opts: &TranslateOptions,
    target_gb: f64,
) -> Result<(usize, f64), CoreError> {
    let mut engine = YSmart::new(w.catalog.clone(), ClusterConfig::small_local());
    w.load_into(&mut engine)?;
    let real = engine.cluster.hdfs.total_bytes().max(1);
    engine.cluster.config.size_multiplier = (target_gb * 1e9) / real as f64;
    let plan = engine.plan(&w.sql)?;
    let report = analyze(&plan);
    let translation = compile(&plan, &report, opts, &format!("abl-{}", w.name))?;
    let out = engine.execute_translation(&translation)?;
    let tables: BTreeMap<String, Vec<Row>> = w
        .tables
        .iter()
        .map(|(n, r)| ((*n).to_string(), r.clone()))
        .collect();
    let expected = oracle_execute(&plan, &tables)?.rows;
    assert!(
        rows_approx_equal(&out.rows, &expected, w.ordered),
        "{}: ablation produced wrong results",
        w.name
    );
    Ok((out.jobs, out.total_s()))
}

fn main() {
    let base = TranslateOptions {
        merge_ic_tc: true,
        merge_jfc: true,
        shared_scan: true,
        combiner: true,
        short_circuit: false,
        value_pad_bytes: 0,
    };
    let cases: Vec<(&str, TranslateOptions)> = vec![
        ("ysmart (baseline)", base),
        (
            "no rule 2-4 (JFC)",
            TranslateOptions {
                merge_jfc: false,
                ..base
            },
        ),
        (
            "no rule 1 (IC/TC)",
            TranslateOptions {
                merge_ic_tc: false,
                merge_jfc: false,
                ..base
            },
        ),
        (
            "no shared scan",
            TranslateOptions {
                shared_scan: false,
                merge_ic_tc: false,
                merge_jfc: false,
                ..base
            },
        ),
        (
            "no combiner",
            TranslateOptions {
                combiner: false,
                ..base
            },
        ),
        (
            "short-circuit on",
            TranslateOptions {
                short_circuit: true,
                ..base
            },
        ),
        (
            "pig-style padding",
            TranslateOptions {
                value_pad_bytes: 24,
                ..base
            },
        ),
    ];

    let tpch = tpch_workloads(&TpchSpec {
        scale: 1.0,
        seed: 2024,
    });
    let clicks = clicks_workloads(&ClicksSpec {
        users: 120,
        clicks_per_user: 40,
        seed: 2024,
        ..ClicksSpec::default()
    });
    let targets: Vec<(&Workload, f64)> = vec![
        (
            tpch.iter()
                .find(|w| w.name == "q21-subtree")
                .expect("q21-subtree workload"),
            10.0,
        ),
        (
            clicks
                .iter()
                .find(|w| w.name == "q-csa")
                .expect("q-csa workload"),
            20.0,
        ),
    ];

    println!("=== Ablations (simulated seconds, small local cluster) ===");
    for (w, gb) in targets {
        println!("-- {} ({gb} GB) --", w.name);
        for (label, opts) in &cases {
            match run_with_options(w, opts, gb) {
                Ok((jobs, secs)) => println!("  {label:<20} {jobs:>2} jobs {secs:>9.1}s"),
                Err(e) => println!("  {label:<20} DNF ({e})"),
            }
        }
    }
}
