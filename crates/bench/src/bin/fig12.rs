//! Fig. 12 — the Facebook production cluster: three concurrent YSmart
//! instances and three Hive instances of Q17 over 1 TB, under production
//! contention (co-running workloads steal slots, task interference slows
//! tasks, and scheduling gaps of up to 5.4 minutes separate jobs — §VII-F).
//!
//! Paper shape: YSmart beats Hive between 230% and 310% per instance, and
//! Hive's extra jobs expose it to more scheduling delay (its JOIN2 job had
//! an unexpectedly long reduce phase).

use ysmart_bench::{execute_verified, print_breakdown, FigRow};
use ysmart_core::Strategy;
use ysmart_datagen::TpchSpec;
use ysmart_mapred::ClusterConfig;
use ysmart_queries::tpch_workloads;

fn main() {
    println!("=== Fig. 12: Q17 on the Facebook production cluster, 1 TB ===");
    // A larger real instance keeps the simulated key space rich enough for
    // the production cluster's hundreds of reduce tasks (tiny key spaces
    // would create artificial reducer skew that true 1 TB data lacks).
    let tpch = tpch_workloads(&TpchSpec {
        scale: 8.0,
        seed: 2024,
    });
    let w = tpch.iter().find(|w| w.name == "q17").expect("workload");

    let mut totals: Vec<(String, f64)> = Vec::new();
    let mut rows = Vec::new();
    for instance in 0..3u64 {
        for (sys, strategy) in [("YSmart", Strategy::YSmart), ("Hive", Strategy::Hive)] {
            // Each instance sees different production dynamics: its own
            // contention seed.
            let config = ClusterConfig::facebook(1000 + instance);
            let label = format!("{sys} {}", instance + 1);
            match execute_verified(w, strategy, &config, 1000.0) {
                Ok(out) => {
                    print_breakdown(&label, &out);
                    totals.push((label.clone(), out.total_s()));
                    rows.push(FigRow {
                        label,
                        result: Ok(out.total_s()),
                    });
                }
                Err(e) => rows.push(FigRow {
                    label,
                    result: Err(e.to_string()),
                }),
            }
        }
    }
    ysmart_bench::print_summary("--- totals ---", &rows);

    let avg = |sys: &str| {
        let xs: Vec<f64> = totals
            .iter()
            .filter(|(l, _)| l.starts_with(sys))
            .map(|(_, t)| *t)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    let (ys, hive) = (avg("YSmart"), avg("Hive"));
    println!(
        "average: YSmart {:.0}s, Hive {:.0}s — Hive/YSmart = {:.2}x",
        ys,
        hive,
        hive / ys
    );
}
