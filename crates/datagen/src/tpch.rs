//! TPC-H-shaped table generator.
//!
//! Row counts scale linearly with [`TpchSpec::scale`]; `scale = 1.0` is a
//! deliberately small laptop-size instance (≈6 k `lineitem` rows) — the
//! simulator's `size_multiplier` models the paper's 10 GB/100 GB/1 TB
//! volumes on top of it. The shapes the workload queries depend on are
//! preserved:
//!
//! * every `lineitem` joins one `orders` row and one `part`/`supplier` row;
//! * ~49% of orders have `o_orderstatus = 'F'` (TPC-H's value);
//! * ~50% of lineitems have `l_receiptdate > l_commitdate` (late receipt),
//!   feeding Q21's late-supplier predicate;
//! * quantities are uniform 1–50 with occasional low-quantity parts, so
//!   Q17's `l_quantity < 0.2 * avg(l_quantity)` keeps a small selectivity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ysmart_plan::Catalog;
use ysmart_rel::{DataType, Row, Schema, Value};

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchSpec {
    /// Linear scale factor; 1.0 ≈ 1 500 orders / ≈6 000 lineitems.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchSpec {
    fn default() -> Self {
        TpchSpec {
            scale: 1.0,
            seed: 42,
        }
    }
}

/// The generated database.
#[derive(Debug, Clone)]
pub struct TpchGen {
    /// `lineitem` rows.
    pub lineitem: Vec<Row>,
    /// `orders` rows.
    pub orders: Vec<Row>,
    /// `part` rows.
    pub part: Vec<Row>,
    /// `supplier` rows.
    pub supplier: Vec<Row>,
    /// `customer` rows.
    pub customer: Vec<Row>,
    /// `nation` rows.
    pub nation: Vec<Row>,
}

/// The 25 TPC-H nations.
const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

impl TpchGen {
    /// Generates the database for a spec.
    #[must_use]
    pub fn generate(spec: &TpchSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let n_orders = ((1500.0 * spec.scale) as usize).max(8);
        let n_parts = ((200.0 * spec.scale) as usize).max(4);
        let n_suppliers = ((10.0 * spec.scale) as usize).max(4);
        let n_customers = ((150.0 * spec.scale) as usize).max(4);

        let nation: Vec<Row> = NATIONS
            .iter()
            .enumerate()
            .map(|(i, n)| Row::new(vec![Value::Int(i as i64), Value::Str((*n).to_string())]))
            .collect();

        let supplier: Vec<Row> = (0..n_suppliers)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i as i64 + 1),
                    Value::Str(format!("Supplier#{:09}", i + 1)),
                    Value::Int(rng.gen_range(0..25)),
                ])
            })
            .collect();

        let customer: Vec<Row> = (0..n_customers)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i as i64 + 1),
                    Value::Str(format!("Customer#{:09}", i + 1)),
                    Value::Int(rng.gen_range(0..25)),
                ])
            })
            .collect();

        let part: Vec<Row> = (0..n_parts)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i as i64 + 1),
                    Value::Str(format!("Part {:07}", i + 1)),
                    Value::Str(format!(
                        "Brand#{}{}",
                        rng.gen_range(1..6),
                        rng.gen_range(1..6)
                    )),
                    Value::Str(
                        ["SM CASE", "MED BOX", "LG DRUM", "JUMBO PKG"][rng.gen_range(0..4)]
                            .to_string(),
                    ),
                    Value::Float(900.0 + (i % 200) as f64),
                ])
            })
            .collect();

        let mut orders = Vec::with_capacity(n_orders);
        let mut lineitem = Vec::new();
        for o in 0..n_orders {
            let okey = o as i64 + 1;
            let status = if rng.gen::<f64>() < 0.49 { "F" } else { "O" };
            let orderdate = rng.gen_range(8036..10591); // 1992-01-01..1998-12-31 in days
            let lines = rng.gen_range(1..=7);
            let mut total = 0.0;
            for l in 0..lines {
                let qty = rng.gen_range(1..=50) as f64;
                let price = qty * rng.gen_range(900.0..2000.0f64);
                total += price;
                let commit = orderdate + rng.gen_range(30..90);
                // Half the lineitems are received late (Q21's predicate).
                let receipt = if rng.gen::<f64>() < 0.5 {
                    commit + rng.gen_range(1..30)
                } else {
                    commit - rng.gen_range(0..25)
                };
                lineitem.push(Row::new(vec![
                    Value::Int(okey),
                    Value::Int(rng.gen_range(1..=n_parts as i64)),
                    Value::Int(rng.gen_range(1..=n_suppliers as i64)),
                    Value::Int(l + 1),
                    Value::Float(qty),
                    Value::Float((price * 100.0).round() / 100.0),
                    Value::Float(rng.gen_range(0.0..0.1f64)),
                    Value::Int(orderdate + rng.gen_range(1..121)),
                    Value::Int(commit),
                    Value::Int(receipt),
                ]));
            }
            orders.push(Row::new(vec![
                Value::Int(okey),
                Value::Int(rng.gen_range(1..=n_customers as i64)),
                Value::Str(status.to_string()),
                Value::Float((total * 100.0).round() / 100.0),
                Value::Int(orderdate),
                Value::Str(format!("{}-PRIORITY", rng.gen_range(1..6))),
            ]));
        }

        TpchGen {
            lineitem,
            orders,
            part,
            supplier,
            customer,
            nation,
        }
    }

    /// Loads every table into a map, keyed by table name.
    #[must_use]
    pub fn tables(&self) -> Vec<(&'static str, &[Row])> {
        vec![
            ("lineitem", &self.lineitem),
            ("orders", &self.orders),
            ("part", &self.part),
            ("supplier", &self.supplier),
            ("customer", &self.customer),
            ("nation", &self.nation),
        ]
    }
}

/// The catalog describing the generated schemas.
#[must_use]
pub fn tpch_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "lineitem",
        Schema::of(
            "lineitem",
            &[
                ("l_orderkey", DataType::Int),
                ("l_partkey", DataType::Int),
                ("l_suppkey", DataType::Int),
                ("l_linenumber", DataType::Int),
                ("l_quantity", DataType::Float),
                ("l_extendedprice", DataType::Float),
                ("l_discount", DataType::Float),
                ("l_shipdate", DataType::Int),
                ("l_commitdate", DataType::Int),
                ("l_receiptdate", DataType::Int),
            ],
        ),
    );
    c.add_table(
        "orders",
        Schema::of(
            "orders",
            &[
                ("o_orderkey", DataType::Int),
                ("o_custkey", DataType::Int),
                ("o_orderstatus", DataType::Str),
                ("o_totalprice", DataType::Float),
                ("o_orderdate", DataType::Int),
                ("o_orderpriority", DataType::Str),
            ],
        ),
    );
    c.add_table(
        "part",
        Schema::of(
            "part",
            &[
                ("p_partkey", DataType::Int),
                ("p_name", DataType::Str),
                ("p_brand", DataType::Str),
                ("p_container", DataType::Str),
                ("p_retailprice", DataType::Float),
            ],
        ),
    );
    c.add_table(
        "supplier",
        Schema::of(
            "supplier",
            &[
                ("s_suppkey", DataType::Int),
                ("s_name", DataType::Str),
                ("s_nationkey", DataType::Int),
            ],
        ),
    );
    c.add_table(
        "customer",
        Schema::of(
            "customer",
            &[
                ("c_custkey", DataType::Int),
                ("c_name", DataType::Str),
                ("c_nationkey", DataType::Int),
            ],
        ),
    );
    c.add_table(
        "nation",
        Schema::of(
            "nation",
            &[("n_nationkey", DataType::Int), ("n_name", DataType::Str)],
        ),
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use ysmart_rel::codec::encode_line;

    #[test]
    fn deterministic_by_seed() {
        let a = TpchGen::generate(&TpchSpec::default());
        let b = TpchGen::generate(&TpchSpec::default());
        assert_eq!(a.lineitem, b.lineitem);
        let c = TpchGen::generate(&TpchSpec {
            seed: 7,
            ..TpchSpec::default()
        });
        assert_ne!(a.lineitem, c.lineitem);
    }

    #[test]
    fn scale_controls_row_counts() {
        let small = TpchGen::generate(&TpchSpec {
            scale: 0.1,
            seed: 1,
        });
        let big = TpchGen::generate(&TpchSpec {
            scale: 1.0,
            seed: 1,
        });
        assert!(big.orders.len() > 5 * small.orders.len());
        // ~4 lineitems per order on average.
        let ratio = big.lineitem.len() as f64 / big.orders.len() as f64;
        assert!((1.0..=7.0).contains(&ratio));
    }

    #[test]
    fn referential_integrity() {
        let db = TpchGen::generate(&TpchSpec::default());
        let max_part = db.part.len() as i64;
        let max_supp = db.supplier.len() as i64;
        let max_order = db.orders.len() as i64;
        for l in &db.lineitem {
            let ok = l.get(0).unwrap().as_int().unwrap();
            let pk = l.get(1).unwrap().as_int().unwrap();
            let sk = l.get(2).unwrap().as_int().unwrap();
            assert!((1..=max_order).contains(&ok));
            assert!((1..=max_part).contains(&pk));
            assert!((1..=max_supp).contains(&sk));
        }
        for s in &db.supplier {
            let nk = s.get(2).unwrap().as_int().unwrap();
            assert!((0..25).contains(&nk));
        }
    }

    #[test]
    fn rows_match_catalog_schemas() {
        let db = TpchGen::generate(&TpchSpec::default());
        let cat = tpch_catalog();
        for (name, rows) in db.tables() {
            let schema = cat.table(name).unwrap();
            for r in rows.iter().take(20) {
                assert_eq!(r.len(), schema.len(), "{name}");
                // Round-trips through the text codec.
                let line = encode_line(r);
                let back = ysmart_rel::codec::decode_line(&line, schema).unwrap();
                assert_eq!(&back, r, "{name}: {line}");
            }
        }
    }

    #[test]
    fn order_status_and_late_receipt_fractions() {
        let db = TpchGen::generate(&TpchSpec {
            scale: 2.0,
            seed: 3,
        });
        let f = db
            .orders
            .iter()
            .filter(|o| o.get(2).unwrap().as_str() == Some("F"))
            .count() as f64
            / db.orders.len() as f64;
        assert!((0.4..0.6).contains(&f), "orderstatus F fraction {f}");
        let late = db
            .lineitem
            .iter()
            .filter(|l| l.get(9).unwrap().as_int().unwrap() > l.get(8).unwrap().as_int().unwrap())
            .count() as f64
            / db.lineitem.len() as f64;
        assert!((0.35..0.65).contains(&late), "late fraction {late}");
    }
}
