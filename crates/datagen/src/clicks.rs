//! Click-stream generator for the Q-CSA workload.
//!
//! Q-CSA (Fig. 1 of the paper) asks: *"what is the average number of pages
//! a user visits between a page in category X and a page in category Y?"*.
//! For that to have non-trivial answers the stream must contain, per user,
//! a click in category X followed (after some interior clicks) by a click
//! in category Y. The generator plants such an X…Y window in a
//! configurable fraction of user timelines and fills the rest with
//! Zipf-flavoured category noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ysmart_plan::Catalog;
use ysmart_rel::{DataType, Row, Schema, Value};

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClicksSpec {
    /// Number of distinct users.
    pub users: usize,
    /// Clicks per user (exact).
    pub clicks_per_user: usize,
    /// Number of page categories.
    pub categories: usize,
    /// The "X" category Q-CSA filters on.
    pub category_x: i64,
    /// The "Y" category Q-CSA filters on.
    pub category_y: i64,
    /// Fraction of users with a planted X…Y window.
    pub xy_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClicksSpec {
    fn default() -> Self {
        ClicksSpec {
            users: 50,
            clicks_per_user: 40,
            categories: 10,
            category_x: 1,
            category_y: 2,
            xy_fraction: 0.6,
            seed: 42,
        }
    }
}

/// The generated click stream.
#[derive(Debug, Clone)]
pub struct ClicksGen {
    /// `clicks(uid, page_id, cid, ts)` rows, grouped by user and ordered by
    /// timestamp within each user.
    pub clicks: Vec<Row>,
}

impl ClicksGen {
    /// Generates a click stream for a spec.
    #[must_use]
    pub fn generate(spec: &ClicksSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut clicks = Vec::with_capacity(spec.users * spec.clicks_per_user);
        for uid in 0..spec.users as i64 {
            let n = spec.clicks_per_user;
            // Category sequence: noise, with an optional planted X…Y window.
            let mut cats: Vec<i64> = (0..n)
                .map(|_| {
                    // Zipf-flavoured: low category ids are more popular.
                    let z = rng.gen::<f64>() * rng.gen::<f64>();
                    ((z * spec.categories as f64) as i64).min(spec.categories as i64 - 1)
                })
                .collect();
            if rng.gen::<f64>() < spec.xy_fraction && n >= 4 {
                let x_pos = rng.gen_range(0..n / 2);
                let y_pos = rng.gen_range(x_pos + 2..n);
                cats[x_pos] = spec.category_x;
                cats[y_pos] = spec.category_y;
                // Keep the interior free of X and Y so the planted pair is
                // the adjacent transition Q-CSA measures.
                for c in cats.iter_mut().take(y_pos).skip(x_pos + 1) {
                    if *c == spec.category_x || *c == spec.category_y {
                        *c = (spec.category_y + 1) % spec.categories as i64;
                    }
                }
            }
            let mut ts = uid * 1_000_000 + rng.gen_range(0..100);
            for cat in cats {
                ts += rng.gen_range(1..120);
                clicks.push(Row::new(vec![
                    Value::Int(uid),
                    Value::Int(rng.gen_range(0..10_000)),
                    Value::Int(cat),
                    Value::Int(ts),
                ]));
            }
        }
        ClicksGen { clicks }
    }
}

/// The catalog for the click-stream table.
#[must_use]
pub fn clicks_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "clicks",
        Schema::of(
            "clicks",
            &[
                ("uid", DataType::Int),
                ("page_id", DataType::Int),
                ("cid", DataType::Int),
                ("ts", DataType::Int),
            ],
        ),
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = ClicksGen::generate(&ClicksSpec::default());
        let b = ClicksGen::generate(&ClicksSpec::default());
        assert_eq!(a.clicks, b.clicks);
    }

    #[test]
    fn row_counts_and_schema() {
        let spec = ClicksSpec::default();
        let g = ClicksGen::generate(&spec);
        assert_eq!(g.clicks.len(), spec.users * spec.clicks_per_user);
        let cat = clicks_catalog();
        let schema = cat.table("clicks").unwrap();
        assert_eq!(g.clicks[0].len(), schema.len());
    }

    #[test]
    fn timestamps_strictly_increase_per_user() {
        let g = ClicksGen::generate(&ClicksSpec::default());
        let mut last: Option<(i64, i64)> = None;
        for r in &g.clicks {
            let uid = r.get(0).unwrap().as_int().unwrap();
            let ts = r.get(3).unwrap().as_int().unwrap();
            if let Some((lu, lt)) = last {
                if lu == uid {
                    assert!(ts > lt, "user {uid} ts {ts} after {lt}");
                }
            }
            last = Some((uid, ts));
        }
    }

    #[test]
    fn planted_xy_windows_exist() {
        let spec = ClicksSpec::default();
        let g = ClicksGen::generate(&spec);
        // At least one user has an X click followed by a Y click.
        let mut users_with_pair = 0;
        for uid in 0..spec.users as i64 {
            let user: Vec<&Row> = g
                .clicks
                .iter()
                .filter(|r| r.get(0).unwrap().as_int() == Some(uid))
                .collect();
            let first_x = user
                .iter()
                .position(|r| r.get(2).unwrap().as_int() == Some(spec.category_x));
            if let Some(x) = first_x {
                if user[x..]
                    .iter()
                    .any(|r| r.get(2).unwrap().as_int() == Some(spec.category_y))
                {
                    users_with_pair += 1;
                }
            }
        }
        assert!(
            users_with_pair >= (spec.users as f64 * spec.xy_fraction * 0.5) as usize,
            "only {users_with_pair} users with X→Y"
        );
    }

    #[test]
    fn categories_in_range() {
        let spec = ClicksSpec::default();
        let g = ClicksGen::generate(&spec);
        for r in &g.clicks {
            let c = r.get(2).unwrap().as_int().unwrap();
            assert!((0..spec.categories as i64).contains(&c));
        }
    }
}
