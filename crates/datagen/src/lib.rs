//! # ysmart-datagen — seeded workload data generators
//!
//! Stand-ins for the data sets of the paper's evaluation (§VII-A):
//!
//! * [`tpch`] — TPC-H-shaped tables (`lineitem`, `orders`, `part`,
//!   `supplier`, `customer`, `nation`) with the key distributions,
//!   join fan-outs and selectivities Q17/Q18/Q21 exercise. The paper ran
//!   dbgen at 10 GB–1 TB; we generate small real data and let the
//!   simulator's `size_multiplier` model the volume.
//! * [`clicks`] — a click-stream table `clicks(uid, page_id, cid, ts)` with
//!   sessionised per-user timelines and guaranteed category-X→category-Y
//!   transitions, so the Q-CSA sessionization query has non-trivial output.
//!
//! All generators are deterministic in their seed.

pub mod clicks;
pub mod tpch;

pub use clicks::{clicks_catalog, ClicksGen, ClicksSpec};
pub use tpch::{tpch_catalog, TpchGen, TpchSpec};
