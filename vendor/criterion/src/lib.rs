//! Vendored offline stand-in for the `criterion` crate.
//!
//! Implements just enough of the criterion 0.5 API for the workspace's
//! `benches/` to compile and produce useful wall-clock numbers offline: no
//! statistics, plots or baselines — each benchmark runs `sample_size`
//! iterations after one warm-up and reports the mean time per iteration.

use std::time::{Duration, Instant};

/// An opaque value sink preventing the optimiser from deleting benchmarked
/// work (plain re-export shape of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness configuration + runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        println!(
            "{id:<40} {:>12.3} µs/iter ({} iters)",
            per_iter * 1e6,
            b.iters
        );
        self
    }
}

/// Measures one closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured iteration count (plus one warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut calls = 0u64;
        Criterion::default()
            .sample_size(5)
            .bench_function("t", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 6); // warm-up + 5 samples
    }
}
