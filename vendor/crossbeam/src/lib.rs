//! Vendored offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn`, which
//! std has provided natively since Rust 1.63 (`std::thread::scope`). This
//! shim adapts the crossbeam 0.8 calling convention (the spawned closure
//! receives a `&Scope` argument, `scope` returns a `Result`) onto the std
//! implementation, so no external dependency is needed.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle; spawned closures receive a reference to it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to join one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure gets the scope back so it can
        /// spawn nested work (the crossbeam signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// threads are joined before this returns. Unlike crossbeam, a panicking
    /// child propagates as a panic rather than an `Err` (the workspace
    /// `expect`s the result either way).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let total: i32 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
