//! Value-generation strategies (no shrinking: failures replay
//! deterministically instead of minimising).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        self.0.gen_value(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `arms` (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_index(self.arms.len());
        self.arms[i].gen_value(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Clone, F: Clone> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            source: self.source.clone(),
            map: self.map.clone(),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.gen_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_int_range(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_int_range(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.gen_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

/// `any::<T>()` — the full-range strategy of a primitive type.
pub struct ArbitraryAny<T>(PhantomData<T>);

impl<T> Clone for ArbitraryAny<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ArbitraryAny<T> {}

/// Full-range values of a primitive type.
#[must_use]
pub fn any<T>() -> ArbitraryAny<T>
where
    ArbitraryAny<T>: Strategy<Value = T>,
{
    ArbitraryAny(PhantomData)
}

impl Strategy for ArbitraryAny<bool> {
    type Value = bool;
    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.gen_u64() >> 63 == 1
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ArbitraryAny<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_u64() as $t
            }
        }
    )*};
}
any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for ArbitraryAny<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread; full bit-pattern floats (NaN, inf)
        // would poison comparisons the workspace properties rely on.
        (rng.gen_f64() - 0.5) * 2e12
    }
}

/// Pattern strategy: `&str` is interpreted as a tiny regex subset —
/// a sequence of `[class]` or literal atoms, each with an optional
/// `{n}`/`{min,max}` repetition (covers the workspace's generators such as
/// `"[a-zA-Z0-9 _.-]{0,20}"`).
impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "bad char range in pattern");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(chars[i]);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated [class] in pattern");
    (set, i + 1)
}

fn parse_repeat(chars: &[char], mut i: usize) -> (usize, usize, usize) {
    if i >= chars.len() || chars[i] != '{' {
        return (1, 1, i);
    }
    i += 1;
    let mut digits = String::new();
    let mut min = None;
    while i < chars.len() && chars[i] != '}' {
        if chars[i] == ',' {
            min = Some(digits.parse::<usize>().expect("bad repeat bound"));
            digits.clear();
        } else {
            digits.push(chars[i]);
        }
        i += 1;
    }
    assert!(i < chars.len(), "unterminated {{}} in pattern");
    let last = digits.parse::<usize>().expect("bad repeat bound");
    match min {
        Some(lo) => (lo, last, i + 1),
        None => (last, last, i + 1),
    }
}

fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (set, next) = if chars[i] == '[' {
            parse_class(&chars, i + 1)
        } else {
            (vec![chars[i]], i + 1)
        };
        let (lo, hi, next) = parse_repeat(&chars, next);
        let n = if lo == hi {
            lo
        } else {
            rng.gen_int_range(lo as i128, hi as i128 + 1) as usize
        };
        for _ in 0..n {
            out.push(set[rng.gen_index(set.len())]);
        }
        i = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-5i64..5).gen_value(&mut r);
            assert!((-5..5).contains(&v));
            let f = (-1000.0f64..1000.0).gen_value(&mut r);
            assert!((-1000.0..1000.0).contains(&f));
        }
    }

    #[test]
    fn pattern_generates_matching_strings() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{0,12}".gen_value(&mut r);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[a-zA-Z0-9 _.-]{0,20}".gen_value(&mut r);
            assert!(t.len() <= 20);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.-".contains(c)));
        }
    }

    #[test]
    fn map_union_just_compose() {
        let mut r = rng();
        let s = Union::new(vec![
            Just(0i64).boxed(),
            (10i64..20).prop_map(|x| x * 2).boxed(),
        ]);
        let mut saw_zero = false;
        let mut saw_big = false;
        for _ in 0..200 {
            match s.gen_value(&mut r) {
                0 => saw_zero = true,
                v if (20..40).contains(&v) => saw_big = true,
                v => panic!("unexpected {v}"),
            }
        }
        assert!(saw_zero && saw_big);
    }
}
