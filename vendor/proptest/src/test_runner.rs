//! Case runner: deterministic RNG, config, and the failure type the
//! `prop_assert*` macros early-return with.

/// Runner configuration (the subset the workspace sets).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for upstream compatibility; this runner never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case (carries the formatted assertion message).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// What a property body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generator handed to strategies (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn gen_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)` (both as i128 so every primitive
    /// integer range fits).
    pub fn gen_int_range(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "cannot sample empty range");
        let span = (hi - lo) as u128;
        lo + ((u128::from(self.gen_u64()) * span) >> 64) as i128
    }

    /// Uniform index in `[0, n)`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_int_range(0, n as i128) as usize
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `cases` generated cases of one property; panics on the first
/// failure with its case index (re-run is deterministic — no shrinking).
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = fnv1a(test_name);
    for i in 0..config.cases {
        let mut rng = TestRng::new(base ^ u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(TestCaseError(msg)) = case(&mut rng) {
            panic!(
                "proptest `{test_name}` failed at case {i}/{}: {msg}",
                config.cases
            );
        }
    }
}
