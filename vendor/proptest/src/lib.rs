//! Vendored offline stand-in for the `proptest` crate.
//!
//! Implements the strategy/macro subset the workspace uses: `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `prop_compose!`,
//! `Just`, `any`, range and `&str`-pattern strategies, and the
//! `prop::{collection, option, sample}` helpers. Cases are generated from
//! a deterministic per-(test, case-index) seed; there is no shrinking —
//! a failing case reports its index and replays identically.

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, ArbitraryAny, BoxedStrategy, Just, Map, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

/// Collection / option / sample strategy constructors (`prop::...`).
pub mod prop {
    /// Strategies over collections.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// `Vec` strategy with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Clone> Clone for VecStrategy<S> {
            fn clone(&self) -> Self {
                VecStrategy {
                    element: self.element.clone(),
                    len: self.len.clone(),
                }
            }
        }

        /// Vectors of `element` values with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.start + 1 >= self.len.end {
                    self.len.start
                } else {
                    rng.gen_int_range(self.len.start as i128, self.len.end as i128) as usize
                };
                (0..n).map(|_| self.element.gen_value(rng)).collect()
            }
        }
    }

    /// Strategies over `Option`.
    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// `Option` strategy: `None` half the time.
        pub struct OptionStrategy<S>(S);

        impl<S: Clone> Clone for OptionStrategy<S> {
            fn clone(&self) -> Self {
                OptionStrategy(self.0.clone())
            }
        }

        /// `Some(inner)` or `None`, evenly.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_u64() >> 63 == 1 {
                    Some(self.0.gen_value(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Strategies sampling from explicit value sets.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniform choice from a fixed list.
        #[derive(Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        /// One of `options`, uniformly (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn gen_value(&self, rng: &mut TestRng) -> T {
                self.0[rng.gen_index(self.0.len())].clone()
            }
        }
    }
}

/// Everything a property test module needs, in one import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// over `cases` generated inputs as a `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::gen_value(&$strat, rng);)+
                let body_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                body_result
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts inside a property body (early-returns a case failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares a named strategy-building function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident($($fnarg:ident : $fnty:ty),* $(,)?)
        ($($var:pat in $strat:expr),+ $(,)?)
        -> $out:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($fnarg : $fnty),*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($var,)+)| $body,
            )
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn small_pair(limit: i64)(a in 0i64..10, b in 0i64..10) -> (i64, i64) {
            (a.min(limit), b.min(limit))
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        fn addition_commutes(a in -100i64..100, b in -100i64..100) {
            prop_assert_eq!(a + b, b + a);
        }

        fn composed_and_sampled(
            p in small_pair(5),
            word in "[a-z]{1,4}",
            pick in prop::sample::select(vec![1u32, 2, 3]),
            maybe in prop::option::of(0u8..4),
            v in prop::collection::vec(any::<bool>(), 0..6),
            mixed in prop_oneof![Just(-1i64), 0i64..10],
        ) {
            prop_assert!(p.0 <= 5 && p.1 <= 5);
            prop_assert!(!word.is_empty() && word.len() <= 4);
            prop_assert!((1..=3).contains(&pick));
            if let Some(x) = maybe {
                prop_assert!(x < 4);
            }
            prop_assert!(v.len() < 6);
            prop_assert!(mixed == -1 || (0..10).contains(&mixed));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        crate::test_runner::run_cases(
            &ProptestConfig {
                cases: 4,
                max_shrink_iters: 0,
            },
            "always_fails",
            |_rng| Err(TestCaseError("boom".into())),
        );
    }
}
