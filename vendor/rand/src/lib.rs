//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`]. The generator is xoshiro256++ seeded via splitmix64 —
//! a different stream than upstream `StdRng` (ChaCha12), but the workspace
//! only relies on *determinism* and seed-sensitivity, never on the exact
//! stream.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform-over-a-range draw (mirrors `rand`'s trait of the
/// same name so integer-literal ranges infer their element type from the
/// surrounding expression, exactly as with the real crate).
pub trait SampleUniform: Sized {
    /// Uniform draw in `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit multiply-shift.
fn mul_shift(word: u64, span: u128) -> u128 {
    (u128::from(word) * span) >> 64
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let (lo, hi) = (lo as i128, hi as i128);
                let hi = if inclusive { hi + 1 } else { hi };
                assert!(lo < hi, "cannot sample empty range");
                (lo + mul_shift(rng.next_u64(), (hi - lo) as u128) as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type (`rng.gen::<f64>()` is `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..8).map(|_| r.gen::<f64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u = r.gen_range(1usize..=3);
            assert!((1..=3).contains(&u));
            let x = r.gen_range(900.0..2000.0f64);
            assert!((900.0..2000.0).contains(&x));
        }
    }

    #[test]
    fn range_draws_cover_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
